//! Instrumented execution of a whole application (the paper's Step B and
//! the ground-truth "full benchmark" runs on the targets).

use fgbs_isa::{compile, CompileMode, CompiledKernel};
use fgbs_machine::{Arch, HwCounters, Machine, Stopwatch};

use crate::app::Application;

/// Per-codelet result of an application run.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeletProfile {
    /// Codelet index within the application.
    pub codelet: usize,
    /// Qualified codelet name.
    pub name: String,
    /// Invocations observed.
    pub invocations: u64,
    /// Sum of *measured* cycles (probe overhead and noise included).
    pub measured_cycles: f64,
    /// Sum of true simulated cycles (no probe effects).
    pub true_cycles: f64,
    /// Aggregate hardware counters.
    pub counters: HwCounters,
    /// Measured cycles of the first invocation only (what a one-shot
    /// profiler would see).
    pub first_invocation_cycles: f64,
}

impl CodeletProfile {
    /// Mean measured cycles per invocation.
    pub fn mean_cycles(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.measured_cycles / self.invocations as f64
        }
    }

    /// Mean measured seconds per invocation on `arch`.
    pub fn mean_seconds(&self, arch: &Arch) -> f64 {
        arch.seconds(self.mean_cycles())
    }
}

/// Result of running one application end to end on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRun {
    /// Application name.
    pub app: String,
    /// Architecture name.
    pub arch: String,
    /// One profile per codelet (index-aligned with
    /// [`Application::codelets`]).
    pub profiles: Vec<CodeletProfile>,
    /// True total cycles of the whole run.
    pub total_cycles: f64,
    /// True total seconds of the whole run.
    pub total_seconds: f64,
}

impl AppRun {
    /// True total seconds spent in codelet `i`.
    pub fn codelet_seconds(&self, arch: &Arch, i: usize) -> f64 {
        arch.seconds(self.profiles[i].true_cycles)
    }
}

/// Run `app` to completion on a fresh machine of `arch`, with measurement
/// probes around every invocation.
///
/// The machine's caches are shared across the whole schedule, so each
/// codelet sees the cache state its predecessors left behind — the
/// behaviour extraction cannot preserve.
///
/// `noise_seed` seeds the measurement-noise stream; runs with the same
/// seed are bit-identical.
///
/// ```
/// use fgbs_extract::{run_application, ApplicationBuilder};
/// use fgbs_isa::{BindingBuilder, CodeletBuilder, Precision};
/// use fgbs_machine::Arch;
///
/// let copy = CodeletBuilder::new("copy", "demo")
///     .array("s", Precision::F64)
///     .array("d", Precision::F64)
///     .param_loop("n")
///     .store("d", &[1], |b| b.load("s", &[1]))
///     .build();
/// let binding = BindingBuilder::new(0)
///     .vector(1024, 8).vector(1024, 8).param(1024)
///     .build_for(&copy);
/// let mut app = ApplicationBuilder::new("demo");
/// let i = app.codelet(copy, vec![binding]);
/// app.invoke(i, 0, 4);
/// let run = run_application(&app.build(), &Arch::nehalem(), 0);
/// assert_eq!(run.profiles[i].invocations, 4);
/// ```
pub fn run_application(app: &Application, arch: &Arch, noise_seed: u64) -> AppRun {
    let mut machine = Machine::new(arch.clone());
    let mut watch = Stopwatch::for_arch(arch, noise_seed);

    // Compile each codelet once, in application context.
    let kernels: Vec<CompiledKernel> = app
        .codelets
        .iter()
        .map(|c| compile(c, &arch.target(), CompileMode::InApp))
        .collect();

    let mut profiles: Vec<CodeletProfile> = app
        .codelets
        .iter()
        .enumerate()
        .map(|(i, c)| CodeletProfile {
            codelet: i,
            name: c.qualified_name(),
            invocations: 0,
            measured_cycles: 0.0,
            true_cycles: 0.0,
            counters: HwCounters::new(arch.caches.len()),
            first_invocation_cycles: 0.0,
        })
        .collect();

    let mut total_cycles = 0.0;
    for _round in 0..app.rounds {
        for entry in &app.schedule {
            let binding = &app.contexts[entry.codelet][entry.context];
            for _ in 0..entry.repeats {
                let meas = machine.run(&kernels[entry.codelet], binding);
                let observed = watch.observe(meas.cycles);
                let p = &mut profiles[entry.codelet];
                if p.invocations == 0 {
                    p.first_invocation_cycles = observed;
                }
                p.invocations += 1;
                p.measured_cycles += observed;
                p.true_cycles += meas.cycles;
                p.counters.add(&meas.counters);
                total_cycles += meas.cycles;
            }
        }
    }

    AppRun {
        app: app.name.clone(),
        arch: arch.name.clone(),
        profiles,
        total_cycles,
        total_seconds: arch.seconds(total_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::ApplicationBuilder;
    use fgbs_isa::{BindingBuilder, CodeletBuilder, Precision};

    fn demo_app() -> Application {
        let streamer = CodeletBuilder::new("stream", "T")
            .array("s", Precision::F64)
            .array("d", Precision::F64)
            .param_loop("n")
            .store("d", &[1], |b| b.load("s", &[1]) * 1.5)
            .build();
        let reducer = CodeletBuilder::new("reduce", "T")
            .array("x", Precision::F64)
            .param_loop("n")
            .update_acc("s", fgbs_isa::BinOp::Add, |b| b.load("x", &[1]))
            .build();
        let n = 4096u64;
        let b0 = BindingBuilder::new(0)
            .vector(n, 8)
            .vector(n, 8)
            .param(n)
            .build_for(&streamer);
        let b1 = BindingBuilder::new(1 << 22)
            .vector(n, 8)
            .param(n)
            .build_for(&reducer);
        let mut ab = ApplicationBuilder::new("T");
        let i0 = ab.codelet(streamer, vec![b0]);
        let i1 = ab.codelet(reducer, vec![b1]);
        ab.invoke(i0, 0, 2).invoke(i1, 0, 3).rounds(4);
        ab.build()
    }

    #[test]
    fn profiles_count_invocations() {
        let app = demo_app();
        let run = run_application(&app, &Arch::nehalem(), 0);
        assert_eq!(run.profiles[0].invocations, 8);
        assert_eq!(run.profiles[1].invocations, 12);
        assert_eq!(run.profiles[0].invocations, app.invocations_of(0));
    }

    #[test]
    fn measured_exceeds_true_cycles() {
        let app = demo_app();
        let run = run_application(&app, &Arch::nehalem(), 0);
        for p in &run.profiles {
            assert!(p.measured_cycles > p.true_cycles); // probe overhead
            assert!(p.mean_cycles() > 0.0);
        }
    }

    #[test]
    fn totals_are_sums_of_true_cycles() {
        let app = demo_app();
        let run = run_application(&app, &Arch::atom(), 3);
        let sum: f64 = run.profiles.iter().map(|p| p.true_cycles).sum();
        assert!((sum - run.total_cycles).abs() < 1e-6);
        assert!(run.total_seconds > 0.0);
        assert_eq!(run.arch, "Atom");
    }

    #[test]
    fn same_seed_reproduces_run() {
        let app = demo_app();
        let a = run_application(&app, &Arch::core2(), 9);
        let b = run_application(&app, &Arch::core2(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_archs_give_different_times() {
        let app = demo_app();
        let nhm = run_application(&app, &Arch::nehalem(), 0);
        let atom = run_application(&app, &Arch::atom(), 0);
        assert!(atom.total_seconds > nhm.total_seconds);
    }
}

#[cfg(test)]
mod helper_tests {
    use super::*;
    use crate::app::ApplicationBuilder;
    use fgbs_isa::{BindingBuilder, CodeletBuilder, Precision};

    #[test]
    fn codelet_seconds_matches_true_cycles() {
        let c = CodeletBuilder::new("k", "T")
            .array("x", Precision::F64)
            .param_loop("n")
            .store("x", &[1], |b| b.constant(1.0))
            .build();
        let b = BindingBuilder::new(0).vector(4096, 8).param(4096).build_for(&c);
        let mut ab = ApplicationBuilder::new("T");
        let i = ab.codelet(c, vec![b]);
        ab.invoke(i, 0, 3);
        let app = ab.build();
        let arch = Arch::nehalem();
        let run = run_application(&app, &arch, 0);
        let s = run.codelet_seconds(&arch, 0);
        assert!((s - arch.seconds(run.profiles[0].true_cycles)).abs() < 1e-15);
        assert!(s > 0.0);
        // Mean helpers behave on empty profiles.
        let empty = CodeletProfile {
            codelet: 9,
            name: "none".into(),
            invocations: 0,
            measured_cycles: 0.0,
            true_cycles: 0.0,
            counters: fgbs_machine::HwCounters::new(2),
            first_invocation_cycles: 0.0,
        };
        assert_eq!(empty.mean_cycles(), 0.0);
        assert_eq!(empty.mean_seconds(&arch), 0.0);
    }

    #[test]
    fn first_invocation_is_slowest_of_a_cold_burst() {
        let c = CodeletBuilder::new("k", "T")
            .array("s", Precision::F64)
            .array("d", Precision::F64)
            .param_loop("n")
            .store("d", &[1], |b| b.load("s", &[1]))
            .build();
        let b = BindingBuilder::new(0)
            .vector(2048, 8)
            .vector(2048, 8)
            .param(2048)
            .build_for(&c);
        let mut ab = ApplicationBuilder::new("T");
        let i = ab.codelet(c, vec![b]);
        ab.invoke(i, 0, 8);
        let app = ab.build();
        let run = run_application(&app, &Arch::nehalem(), 0);
        let p = &run.profiles[0];
        // The cold first invocation exceeds the burst mean.
        assert!(p.first_invocation_cycles > p.mean_cycles());
    }
}

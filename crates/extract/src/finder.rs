//! The hotspot detector: which codelets are worth (and capable of)
//! extraction.

use fgbs_machine::Arch;

use crate::app::Application;
use crate::profile::AppRun;

/// Detection policy (the paper's Step A + the §3.2 measurability filter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeletFinder {
    /// Codelets whose *per-invocation* time on the reference architecture
    /// is below this many cycles are discarded as unmeasurable. The paper
    /// uses 10⁶ cycles on full-size NAS inputs; the default here is scaled
    /// to the suites' reduced datasets.
    pub min_cycles_per_invocation: f64,
}

impl Default for CodeletFinder {
    fn default() -> Self {
        CodeletFinder {
            min_cycles_per_invocation: 2_000.0,
        }
    }
}

/// Result of running detection over a profiled application.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Indices of detected (extractable, measurable) codelets.
    pub detected: Vec<usize>,
    /// Fraction of the application's true execution time covered by the
    /// detected codelets.
    pub coverage: f64,
}

impl CodeletFinder {
    /// A finder with an explicit measurability threshold.
    pub fn with_min_cycles(min_cycles_per_invocation: f64) -> Self {
        CodeletFinder {
            min_cycles_per_invocation,
        }
    }

    /// Detect the extractable codelets of `app`, using its reference
    /// profile `run` for the measurability filter and coverage accounting.
    pub fn detect(&self, app: &Application, run: &AppRun, _arch: &Arch) -> Detection {
        let mut detected = Vec::new();
        let mut covered = 0.0;
        for (i, codelet) in app.codelets.iter().enumerate() {
            let p = &run.profiles[i];
            let per_inv = if p.invocations == 0 {
                0.0
            } else {
                p.true_cycles / p.invocations as f64
            };
            if codelet.extractable && per_inv >= self.min_cycles_per_invocation {
                detected.push(i);
                covered += p.true_cycles;
            }
        }
        Detection {
            detected,
            coverage: if run.total_cycles > 0.0 {
                covered / run.total_cycles
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::ApplicationBuilder;
    use crate::profile::run_application;
    use fgbs_isa::{BindingBuilder, CodeletBuilder, Precision};

    fn app_with_mixed_codelets() -> Application {
        let big = CodeletBuilder::new("big", "T")
            .array("s", Precision::F64)
            .array("d", Precision::F64)
            .param_loop("n")
            .store("d", &[1], |b| b.load("s", &[1]) * 2.0)
            .build();
        let tiny = CodeletBuilder::new("tiny", "T")
            .array("x", Precision::F64)
            .param_loop("n")
            .store("x", &[1], |b| b.constant(0.0))
            .build();
        let hidden = CodeletBuilder::new("hidden", "T")
            .array("s", Precision::F64)
            .array("d", Precision::F64)
            .param_loop("n")
            .store("d", &[1], |b| b.load("s", &[1]))
            .non_extractable()
            .build();
        let nb = 65536u64;
        let nt = 16u64;
        let b_big = BindingBuilder::new(0)
            .vector(nb, 8)
            .vector(nb, 8)
            .param(nb)
            .build_for(&big);
        let b_tiny = BindingBuilder::new(1 << 24)
            .vector(nt, 8)
            .param(nt)
            .build_for(&tiny);
        let b_hidden = BindingBuilder::new(1 << 25)
            .vector(4096, 8)
            .vector(4096, 8)
            .param(4096)
            .build_for(&hidden);
        let mut ab = ApplicationBuilder::new("T");
        let i_big = ab.codelet(big, vec![b_big]);
        let i_tiny = ab.codelet(tiny, vec![b_tiny]);
        let i_hidden = ab.codelet(hidden, vec![b_hidden]);
        ab.invoke(i_big, 0, 2)
            .invoke(i_tiny, 0, 2)
            .invoke(i_hidden, 0, 1)
            .rounds(2);
        ab.build()
    }

    #[test]
    fn detects_only_measurable_extractable_codelets() {
        let app = app_with_mixed_codelets();
        let arch = Arch::nehalem();
        let run = run_application(&app, &arch, 0);
        let det = CodeletFinder::default().detect(&app, &run, &arch);
        assert_eq!(det.detected, vec![0], "only `big` passes both filters");
    }

    #[test]
    fn coverage_is_a_proper_fraction() {
        let app = app_with_mixed_codelets();
        let arch = Arch::nehalem();
        let run = run_application(&app, &arch, 0);
        let det = CodeletFinder::default().detect(&app, &run, &arch);
        assert!(det.coverage > 0.5, "big dominates: {}", det.coverage);
        assert!(det.coverage < 1.0, "hidden+tiny keep it below 1");
    }

    #[test]
    fn zero_threshold_admits_tiny_codelets() {
        let app = app_with_mixed_codelets();
        let arch = Arch::nehalem();
        let run = run_application(&app, &arch, 0);
        let det = CodeletFinder::with_min_cycles(0.0).detect(&app, &run, &arch);
        assert_eq!(det.detected, vec![0, 1]); // hidden stays out: not extractable
    }
}

//! The application model: codelets plus an invocation schedule.

use fgbs_isa::{Binding, Codelet};
use serde::{Deserialize, Serialize};

/// One step of an application's execution: `repeats` consecutive
/// invocations of one codelet under one binding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Index into [`Application::codelets`].
    pub codelet: usize,
    /// Index into that codelet's context table
    /// ([`Application::contexts`]`[codelet]`).
    pub context: usize,
    /// Consecutive invocations at this point of the schedule.
    pub repeats: u64,
}

/// An application: the unit the paper's Step A decomposes.
///
/// The schedule is executed [`Application::rounds`] times (modelling the
/// outer time-stepping loop of the NAS solvers); within one round the
/// entries run in order. A codelet that appears in several entries with
/// different contexts is *context-varying* — the paper's first class of
/// ill-behaved codelets, since extraction captures only the first context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Application name (`BT`, `CG`, …).
    pub name: String,
    /// The codelets, in declaration order.
    pub codelets: Vec<Codelet>,
    /// Per-codelet context tables (distinct bindings used across the run).
    pub contexts: Vec<Vec<Binding>>,
    /// One round of the invocation schedule.
    pub schedule: Vec<ScheduleEntry>,
    /// Number of rounds (time steps).
    pub rounds: u64,
}

impl Application {
    /// Total invocations of codelet `i` over the whole run.
    pub fn invocations_of(&self, i: usize) -> u64 {
        self.rounds
            * self
                .schedule
                .iter()
                .filter(|e| e.codelet == i)
                .map(|e| e.repeats)
                .sum::<u64>()
    }

    /// Context of the *first* invocation of codelet `i` in schedule order —
    /// the one Codelet Finder captures.
    pub fn first_context(&self, i: usize) -> Option<&Binding> {
        self.schedule
            .iter()
            .find(|e| e.codelet == i)
            .map(|e| &self.contexts[i][e.context])
    }

    /// Number of distinct contexts codelet `i` is invoked with.
    pub fn context_count(&self, i: usize) -> usize {
        let mut used: Vec<usize> = self
            .schedule
            .iter()
            .filter(|e| e.codelet == i)
            .map(|e| e.context)
            .collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }

    /// Indices of codelets that can be outlined by the extractor.
    pub fn extractable(&self) -> Vec<usize> {
        (0..self.codelets.len())
            .filter(|&i| self.codelets[i].extractable)
            .collect()
    }

    /// Validate internal consistency (schedule indices, context tables,
    /// binding shapes).
    ///
    /// # Panics
    ///
    /// Panics with a description on the first inconsistency. Suites call
    /// this from their tests.
    pub fn validate(&self) {
        assert_eq!(
            self.codelets.len(),
            self.contexts.len(),
            "app {}: contexts table size mismatch",
            self.name
        );
        assert!(self.rounds > 0, "app {}: zero rounds", self.name);
        assert!(!self.schedule.is_empty(), "app {}: empty schedule", self.name);
        for (i, e) in self.schedule.iter().enumerate() {
            assert!(
                e.codelet < self.codelets.len(),
                "app {}: schedule[{i}] references codelet {}",
                self.name,
                e.codelet
            );
            assert!(
                e.context < self.contexts[e.codelet].len(),
                "app {}: schedule[{i}] references context {} of codelet {}",
                self.name,
                e.context,
                self.codelets[e.codelet].name
            );
            assert!(e.repeats > 0, "app {}: schedule[{i}] repeats 0", self.name);
        }
        for (ci, (c, ctxs)) in self.codelets.iter().zip(&self.contexts).enumerate() {
            assert!(
                !ctxs.is_empty(),
                "app {}: codelet {} has no context",
                self.name,
                c.name
            );
            for b in ctxs {
                assert_eq!(
                    b.arrays.len(),
                    c.arrays.len(),
                    "app {}: codelet {} context has wrong array count",
                    self.name,
                    c.name
                );
                assert_eq!(
                    b.params.len(),
                    c.n_params,
                    "app {}: codelet {} context has wrong param count",
                    self.name,
                    c.name
                );
            }
            // Every codelet should actually be scheduled.
            assert!(
                self.schedule.iter().any(|e| e.codelet == ci),
                "app {}: codelet {} never scheduled",
                self.name,
                c.name
            );
        }
    }
}

/// Incremental construction of an [`Application`].
#[derive(Debug)]
pub struct ApplicationBuilder {
    name: String,
    codelets: Vec<Codelet>,
    contexts: Vec<Vec<Binding>>,
    schedule: Vec<ScheduleEntry>,
    rounds: u64,
}

impl ApplicationBuilder {
    /// Start an application named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder {
            name: name.into(),
            codelets: Vec::new(),
            contexts: Vec::new(),
            schedule: Vec::new(),
            rounds: 1,
        }
    }

    /// Add a codelet with its context table; returns its index.
    pub fn codelet(&mut self, codelet: Codelet, contexts: Vec<Binding>) -> usize {
        self.codelets.push(codelet);
        self.contexts.push(contexts);
        self.codelets.len() - 1
    }

    /// Append a schedule entry.
    pub fn invoke(&mut self, codelet: usize, context: usize, repeats: u64) -> &mut Self {
        self.schedule.push(ScheduleEntry {
            codelet,
            context,
            repeats,
        });
        self
    }

    /// Set the number of rounds (time steps).
    pub fn rounds(&mut self, rounds: u64) -> &mut Self {
        self.rounds = rounds;
        self
    }

    /// Finish and validate.
    pub fn build(self) -> Application {
        let app = Application {
            name: self.name,
            codelets: self.codelets,
            contexts: self.contexts,
            schedule: self.schedule,
            rounds: self.rounds,
        };
        app.validate();
        app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbs_isa::{BindingBuilder, CodeletBuilder, Precision};

    fn copy(name: &str) -> Codelet {
        CodeletBuilder::new(name, "T")
            .array("s", Precision::F64)
            .array("d", Precision::F64)
            .param_loop("n")
            .store("d", &[1], |b| b.load("s", &[1]))
            .build()
    }

    fn ctx(c: &Codelet, n: u64, base: u64) -> Binding {
        BindingBuilder::new(base)
            .vector(n, 8)
            .vector(n, 8)
            .param(n)
            .build_for(c)
    }

    fn tiny_app() -> Application {
        let c0 = copy("a");
        let c1 = copy("b");
        let b00 = ctx(&c0, 64, 0);
        let b01 = ctx(&c0, 128, 1 << 20);
        let b1 = ctx(&c1, 64, 2 << 20);
        let mut ab = ApplicationBuilder::new("T");
        let i0 = ab.codelet(c0, vec![b00, b01]);
        let i1 = ab.codelet(c1, vec![b1]);
        ab.invoke(i0, 0, 3).invoke(i1, 0, 2).invoke(i0, 1, 1).rounds(5);
        ab.build()
    }

    #[test]
    fn invocation_counts_scale_with_rounds() {
        let app = tiny_app();
        assert_eq!(app.invocations_of(0), 5 * (3 + 1));
        assert_eq!(app.invocations_of(1), 5 * 2);
    }

    #[test]
    fn first_context_is_schedule_order() {
        let app = tiny_app();
        let b = app.first_context(0).unwrap();
        assert_eq!(b.params[0], 64);
        assert_eq!(app.context_count(0), 2);
        assert_eq!(app.context_count(1), 1);
    }

    #[test]
    fn extractable_lists_all_by_default() {
        let app = tiny_app();
        assert_eq!(app.extractable(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "never scheduled")]
    fn unscheduled_codelet_rejected() {
        let c0 = copy("a");
        let c1 = copy("b");
        let b0 = ctx(&c0, 64, 0);
        let b1 = ctx(&c1, 64, 1 << 20);
        let mut ab = ApplicationBuilder::new("T");
        let i0 = ab.codelet(c0, vec![b0]);
        let _i1 = ab.codelet(c1, vec![b1]);
        ab.invoke(i0, 0, 1);
        ab.build();
    }

    #[test]
    #[should_panic(expected = "references context")]
    fn bad_context_index_rejected() {
        let c0 = copy("a");
        let b0 = ctx(&c0, 64, 0);
        let mut ab = ApplicationBuilder::new("T");
        let i0 = ab.codelet(c0, vec![b0]);
        ab.invoke(i0, 1, 1);
        ab.build();
    }
}

//! Memory dumps: the captured execution context of a codelet's first
//! invocation.
//!
//! CAPS Codelet Finder runs the original application once and snapshots the
//! memory touched by each codelet; the standalone wrapper reloads the
//! snapshot before running the loop. Our codelets initialise their buffers
//! deterministically from the binding seed, so the dump stores the *layout
//! and generator recipe* plus a data witness (the first elements of every
//! array) used to verify integrity at restore time — semantically
//! equivalent to a full image at a fraction of the size.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fgbs_isa::{Binding, Codelet, Memory};

use crate::app::Application;

const MAGIC: u32 = 0x4647_4253; // "FGBS"
const VERSION: u16 = 1;
const WITNESS: usize = 8;

/// A captured first-invocation context, serialisable to a byte buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryDump {
    /// Qualified name of the dumped codelet.
    pub codelet: String,
    /// The captured binding (layout + trip parameters + data seed).
    pub binding: Binding,
    /// Serialised dump image.
    pub payload: Bytes,
}

impl MemoryDump {
    /// Capture the first-invocation context of codelet `idx` in `app`.
    ///
    /// Returns `None` when the codelet cannot be outlined (not extractable)
    /// or never runs.
    pub fn capture(app: &Application, idx: usize) -> Option<MemoryDump> {
        let codelet = &app.codelets[idx];
        if !codelet.extractable {
            return None;
        }
        let binding = app.first_context(idx)?.clone();
        let payload = encode(codelet, &binding);
        Some(MemoryDump {
            codelet: codelet.qualified_name(),
            binding,
            payload,
        })
    }

    /// Rebuild the execution memory from the dump, verifying the witness.
    ///
    /// # Panics
    ///
    /// Panics if the payload is corrupt (bad magic/version or witness
    /// mismatch) — a corrupt dump must never silently produce a wrong
    /// microbenchmark.
    pub fn restore(&self, codelet: &Codelet) -> (Binding, Memory) {
        let mut buf = self.payload.clone();
        assert!(buf.remaining() >= 6, "dump truncated");
        assert_eq!(buf.get_u32(), MAGIC, "bad dump magic");
        assert_eq!(buf.get_u16(), VERSION, "unsupported dump version");
        let n_arrays = buf.get_u32() as usize;
        assert_eq!(n_arrays, self.binding.arrays.len(), "array count mismatch");
        let mem = Memory::for_binding(codelet, &self.binding);
        for a in 0..n_arrays {
            let len = buf.get_u64();
            assert_eq!(len, self.binding.arrays[a].len, "array length mismatch");
            let w = (len as usize).min(WITNESS);
            for i in 0..w {
                let expect = buf.get_u64();
                let got = mem.get(a, i).to_bits();
                assert!(
                    expect == got,
                    "dump witness mismatch for {} array {a} elem {i}",
                    self.codelet
                );
            }
        }
        (self.binding.clone(), mem)
    }

    /// Size of the serialised dump in bytes.
    pub fn size_bytes(&self) -> usize {
        self.payload.len()
    }
}

fn encode(codelet: &Codelet, binding: &Binding) -> Bytes {
    let mem = Memory::for_binding(codelet, binding);
    let mut out = BytesMut::with_capacity(64 + binding.arrays.len() * (8 + WITNESS * 8));
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u32(binding.arrays.len() as u32);
    for (a, ab) in binding.arrays.iter().enumerate() {
        out.put_u64(ab.len);
        let w = (ab.len as usize).min(WITNESS);
        for i in 0..w {
            out.put_u64(mem.get(a, i).to_bits());
        }
    }
    out.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::ApplicationBuilder;
    use fgbs_isa::{BindingBuilder, CodeletBuilder, Precision};

    fn app() -> Application {
        let c = CodeletBuilder::new("k", "T")
            .array("x", Precision::F64)
            .array("y", Precision::F64)
            .param_loop("n")
            .store("y", &[1], |b| b.load("x", &[1]))
            .build();
        let hidden = CodeletBuilder::new("h", "T")
            .array("x", Precision::F64)
            .param_loop("n")
            .store("x", &[1], |b| b.constant(0.0))
            .non_extractable()
            .build();
        let b0 = BindingBuilder::new(0)
            .vector(64, 8)
            .vector(64, 8)
            .param(64)
            .seed(7)
            .build_for(&c);
        let b1 = BindingBuilder::new(1 << 16)
            .vector(256, 8)
            .vector(256, 8)
            .param(256)
            .build_for(&c);
        let bh = BindingBuilder::new(1 << 20)
            .vector(64, 8)
            .param(64)
            .build_for(&hidden);
        let mut ab = ApplicationBuilder::new("T");
        let i0 = ab.codelet(c, vec![b0, b1]);
        let ih = ab.codelet(hidden, vec![bh]);
        // First invocation uses context 1 on purpose: capture must follow
        // schedule order, not context-table order.
        ab.invoke(i0, 1, 1).invoke(i0, 0, 3).invoke(ih, 0, 1);
        ab.build()
    }

    #[test]
    fn captures_first_scheduled_context() {
        let app = app();
        let d = MemoryDump::capture(&app, 0).unwrap();
        assert_eq!(d.binding.params[0], 256);
        assert_eq!(d.codelet, "T/k");
        assert!(d.size_bytes() > 16);
    }

    #[test]
    fn non_extractable_yields_none() {
        let app = app();
        assert!(MemoryDump::capture(&app, 1).is_none());
    }

    #[test]
    fn restore_roundtrips() {
        let app = app();
        let d = MemoryDump::capture(&app, 0).unwrap();
        let (binding, mem) = d.restore(&app.codelets[0]);
        assert_eq!(binding, d.binding);
        assert_eq!(mem.array(0).len(), 256);
    }

    #[test]
    #[should_panic(expected = "bad dump magic")]
    fn corrupt_payload_is_rejected() {
        let app = app();
        let mut d = MemoryDump::capture(&app, 0).unwrap();
        let mut raw = d.payload.to_vec();
        raw[0] ^= 0xFF;
        d.payload = Bytes::from(raw);
        let _ = d.restore(&app.codelets[0]);
    }

    #[test]
    #[should_panic(expected = "witness mismatch")]
    fn tampered_witness_is_rejected() {
        let app = app();
        let mut d = MemoryDump::capture(&app, 0).unwrap();
        let mut raw = d.payload.to_vec();
        let n = raw.len();
        raw[n - 1] ^= 0x01;
        d.payload = Bytes::from(raw);
        let _ = d.restore(&app.codelets[0]);
    }
}

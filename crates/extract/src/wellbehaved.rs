//! The well-behavedness check of Step D.
//!
//! A representative is only trustworthy if its standalone microbenchmark
//! reproduces its in-application time on the *reference* architecture.
//! Akel et al. (the paper's companion study) found 19 % of NAS codelets
//! ill-behaved; the selection loop in `fgbs-core` uses this predicate to
//! reject them.

/// Tolerance of the standalone-vs-in-app comparison (the paper's 10 %).
pub const WELL_BEHAVED_TOLERANCE: f64 = 0.10;

/// Relative difference `|a - b| / b`, with `b` the in-app baseline.
///
/// Returns infinity when the baseline is zero but the candidate is not.
pub fn relative_difference(standalone: f64, in_app: f64) -> f64 {
    if in_app == 0.0 {
        if standalone == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (standalone - in_app).abs() / in_app
    }
}

/// Does the standalone time reproduce the in-app time within
/// [`WELL_BEHAVED_TOLERANCE`]?
pub fn behaves_well(standalone_cycles: f64, in_app_cycles: f64) -> bool {
    relative_difference(standalone_cycles, in_app_cycles) <= WELL_BEHAVED_TOLERANCE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_well_behaved() {
        assert!(behaves_well(100.0, 100.0));
        assert_eq!(relative_difference(100.0, 100.0), 0.0);
    }

    #[test]
    fn boundary_is_inclusive() {
        assert!(behaves_well(110.0, 100.0));
        assert!(!behaves_well(110.1, 100.0));
        assert!(behaves_well(90.0, 100.0));
        assert!(!behaves_well(89.9, 100.0));
    }

    #[test]
    fn zero_baseline() {
        assert!(behaves_well(0.0, 0.0));
        assert!(!behaves_well(1.0, 0.0));
        assert!(relative_difference(1.0, 0.0).is_infinite());
    }

    #[test]
    fn asymmetry_is_relative_to_in_app() {
        // 50 vs 100 is 50% off; 100 vs 50 is 100% off.
        assert!((relative_difference(50.0, 100.0) - 0.5).abs() < 1e-12);
        assert!((relative_difference(100.0, 50.0) - 1.0).abs() < 1e-12);
    }
}

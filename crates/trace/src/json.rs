//! A deterministic JSON writer and a strict parser.
//!
//! The store replays cached response *bytes*, so freshly rendered JSON
//! must be byte-identical to what an earlier process rendered from the
//! same (deterministic) pipeline output. This writer guarantees that:
//! object members keep insertion order, floats use Rust's shortest
//! round-trip `Display` (stable across runs and platforms), and
//! non-finite floats — not representable in JSON — become `null`.
//!
//! [`Json::parse`] is the inverse: a strict recursive-descent parser
//! (no trailing garbage, no unknown escapes, bounded depth) used by
//! `fgbs trace summary` to validate emitted Chrome traces. Rendered
//! output round-trips render-stably: `Json::parse(&j.render())` yields
//! a value that renders to the same bytes (integral floats reparse as
//! integers; non-finite floats render as `null`).

use std::fmt::Write as _;

/// Maximum nesting depth [`Json::parse`] accepts.
const MAX_DEPTH: usize = 256;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, sizes).
    U64(u64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render to a compact JSON string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts both integer and float nodes).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer value (floats only if they are exact non-negative ints).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a complete JSON document. Strict: rejects trailing
    /// garbage, malformed escapes, lone surrogates, leading zeros and
    /// nesting deeper than an internal bound. Non-negative integers
    /// without a fraction or exponent parse as [`Json::U64`]; all other
    /// numbers as [`Json::Num`].
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: no leading zeros.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral && !negative {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let j = Json::obj(vec![
            ("b", Json::U64(2)),
            ("a", Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(j.render(), r#"{"b":2,"a":[1.5,null,true]}"#);
    }

    #[test]
    fn floats_are_shortest_round_trip_and_nan_is_null() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(0.1).render(), "0.1");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_controls() {
        assert_eq!(Json::str("a\"b\\c\nd\u{1}").render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn rendering_is_deterministic() {
        let j = Json::obj(vec![("x", Json::Num(1.0 / 3.0)), ("y", Json::str("é"))]);
        assert_eq!(j.render(), j.clone().render());
    }

    #[test]
    fn parses_what_it_renders() {
        let j = Json::obj(vec![
            ("name", Json::str("stage.reduce")),
            ("ts", Json::Num(12.375)),
            ("n", Json::U64(42)),
            ("big", Json::U64(u64::MAX)),
            ("neg", Json::Num(-7.0)),
            ("none", Json::Null),
            ("ok", Json::Bool(false)),
            ("items", Json::Arr(vec![Json::U64(1), Json::str("a\"b\nc\u{1}é")])),
            ("nested", Json::obj(vec![("deep", Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&j.render()), Ok(j));
    }

    #[test]
    fn parses_whitespace_escapes_and_surrogates() {
        let j = Json::parse(" { \"a\" : [ 1 , -2.5e3 ,\t\"\\u0041\\ud83d\\ude00\" ] } ")
            .unwrap();
        assert_eq!(
            j,
            Json::obj(vec![(
                "a",
                Json::Arr(vec![Json::U64(1), Json::Num(-2500.0), Json::str("A😀")])
            )])
        );
    }

    #[test]
    fn integer_float_split() {
        assert_eq!(Json::parse("7"), Ok(Json::U64(7)));
        assert_eq!(Json::parse("7.0"), Ok(Json::Num(7.0)));
        assert_eq!(Json::parse("-7"), Ok(Json::Num(-7.0)));
        assert_eq!(Json::parse("1e2"), Ok(Json::Num(100.0)));
    }

    #[test]
    fn strict_rejections() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01", "1 2", "\"\\x\"", "\"unterminated",
            "nul", "+1", "1.", "{a:1}", "\"\\ud800\"", "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"s":"x","n":3,"f":1.5,"a":[true]}"#).unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(j.get("missing"), None);
    }
}

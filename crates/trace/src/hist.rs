//! Log-linear ("HDR-style") quantile histograms.
//!
//! [`Histogram`] buckets unsigned values on a log-linear grid: the
//! first octave is exact (bucket width 1), and every later octave is
//! split into `SUB/2` equal sub-buckets, so the bucket holding a value
//! `v` is never wider than `2·v/SUB` — a bounded *relative* error of
//! `2/SUB` (≈3.1% with the default 6 sub-bucket bits) at any
//! magnitude. That makes p50/p95/p99 estimates trustworthy across the
//! microsecond-to-minute range one set of serve endpoints spans,
//! where the old fixed log2 buckets answered only within 2×.
//!
//! Recording is wait-free: one bucket index computation (a handful of
//! shifts off `leading_zeros`) plus five relaxed atomic RMWs, so the
//! histogram can sit on the serve hot path and inside the per-stage
//! latency estimator ([`Estimator`]) without a lock.
//!
//! # Quantile contract (property-tested in `tests/hist_prop.rs`)
//!
//! * `quantile(0)` is exactly the minimum recorded value and
//!   `quantile(1)` exactly the maximum (tracked out-of-band).
//! * For `0 < p < 1` the estimate lies within the bounds of the bucket
//!   containing the rank-`⌈p·n⌉` sample.
//! * `quantile` is monotone non-decreasing in `p`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Json;

/// Sub-bucket bits: `1 << SUB_BITS` exact buckets in the first octave,
/// half that per later octave. 6 bits bounds relative error at 1/32.
pub const SUB_BITS: u32 = 6;
/// Sub-buckets in the first (exact) octave.
const SUB: u64 = 1 << SUB_BITS;
/// Sub-buckets per logarithmic octave after the first.
const HALF: u64 = SUB / 2;
/// Octaves needed to cover the full `u64` range.
const OCTAVES: u64 = 64 - SUB_BITS as u64;
/// Total bucket count (first exact octave + log-linear octaves).
pub const N_BUCKETS: usize = (SUB + OCTAVES * HALF) as usize;

/// Bucket index for a value. Exact below `SUB`; log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        // Highest set bit is at position `top >= SUB_BITS`; shifting by
        // `octave` leaves a SUB_BITS-bit value in [HALF, SUB).
        let top = 63 - v.leading_zeros() as u64;
        let octave = top - (SUB_BITS as u64 - 1);
        let sub = (v >> octave) - HALF;
        (SUB + (octave - 1) * HALF + sub) as usize
    }
}

/// Inclusive `(low, high)` value bounds of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let low = |i: u64| -> u64 {
        if i < SUB {
            i
        } else {
            let j = i - SUB;
            let octave = j / HALF + 1;
            let sub = j % HALF;
            (HALF + sub) << octave
        }
    };
    let lo = low(index as u64);
    let hi = if index + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        low(index as u64 + 1) - 1
    };
    (lo, hi)
}

/// A concurrent log-linear histogram with bounded-relative-error
/// quantiles. All methods take `&self`; recording is five relaxed
/// atomic operations.
pub struct Histogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        // `[AtomicU64; N]` has no const initializer path through a Box
        // without unsafe; build via a Vec of zeros instead.
        let v: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; N_BUCKETS]> = v
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec has N_BUCKETS elements"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Quantile estimate. Exact at `p = 0` (min) and `p = 1` (max);
    /// otherwise within the bounds of the bucket holding the
    /// rank-`⌈p·n⌉` sample. Returns 0 on an empty histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return self.min();
        }
        if p >= 1.0 {
            return self.max();
        }
        let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Clamping the bucket's upper bound into [min, max]
                // keeps the estimate inside the bucket: the bucket
                // holds at least one sample, so min <= high-side
                // samples and max >= low bound.
                let (_, hi) = bucket_bounds(i);
                return hi.min(self.max()).max(self.min());
            }
        }
        self.max()
    }

    /// Occupied buckets as `(low_bound, count)` pairs, ascending.
    pub fn occupied(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_bounds(i).0, c))
            })
            .collect()
    }

    /// JSON summary: count/sum/min/max plus the standard quantiles.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::U64(self.count())),
            ("sum", Json::U64(self.sum())),
            ("min", Json::U64(self.min())),
            ("max", Json::U64(self.max())),
            ("p50", Json::U64(self.quantile(0.50))),
            ("p95", Json::U64(self.quantile(0.95))),
            ("p99", Json::U64(self.quantile(0.99))),
        ])
    }
}

/// Per-stage latency estimator: a [`Histogram`] for quantiles plus an
/// exponentially-weighted moving average for a fast "current latency"
/// signal. This pair is the feed the admission controller (ROADMAP
/// item 1) multiplies by queue depth to decide whether a request can
/// meet its deadline.
pub struct Estimator {
    hist: Histogram,
    /// EWMA stored as `f64` bits for lock-free update.
    ewma_bits: AtomicU64,
    /// Smoothing factor in (0, 1]; higher tracks faster.
    alpha: f64,
}

impl std::fmt::Debug for Estimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Estimator")
            .field("ewma", &self.ewma())
            .field("count", &self.hist.count())
            .finish()
    }
}

impl Estimator {
    /// A new estimator with smoothing factor `alpha` (e.g. 0.2).
    pub fn new(alpha: f64) -> Estimator {
        Estimator {
            hist: Histogram::new(),
            ewma_bits: AtomicU64::new(f64::NAN.to_bits()),
            alpha,
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.hist.record(v);
        let mut cur = self.ewma_bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let next = if old.is_nan() {
                v as f64
            } else {
                old + self.alpha * (v as f64 - old)
            };
            match self.ewma_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current EWMA (0.0 before the first observation).
    pub fn ewma(&self) -> f64 {
        let v = f64::from_bits(self.ewma_bits.load(Ordering::Relaxed));
        if v.is_nan() {
            0.0
        } else {
            v
        }
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// JSON summary: the histogram fields plus the EWMA.
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.hist.to_json() else {
            unreachable!("histogram summary is an object")
        };
        fields.push(("ewma".to_string(), Json::Num(self.ewma())));
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_octave_is_exact() {
        for v in 0..SUB {
            let i = bucket_index(v);
            assert_eq!(bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn bounds_partition_the_value_range() {
        let mut expect = 0u64;
        for i in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect, "bucket {i} lower bound");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, N_BUCKETS - 1);
                return;
            }
            expect = hi + 1;
        }
        panic!("last bucket must reach u64::MAX");
    }

    #[test]
    fn index_respects_bounds_at_powers_of_two() {
        for shift in 0..64u32 {
            for delta in [-1i64, 0, 1] {
                let v = (1u128 << shift) as i128 + delta as i128;
                if v < 0 || v > u64::MAX as i128 {
                    continue;
                }
                let v = v as u64;
                let (lo, hi) = bucket_bounds(bucket_index(v));
                assert!(lo <= v && v <= hi, "v={v} lo={lo} hi={hi}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 999, 12_345, 1 << 20, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = hi - lo;
            assert!(
                (width as f64) <= 2.0 * v as f64 / SUB as f64 + 1.0,
                "v={v} width={width}"
            );
        }
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        // 500 sits in a bucket of width <= 2*500/64 + 1.
        assert!((468..=532).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((958..=1000).contains(&p99), "p99={p99}");
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn estimator_tracks_shifts() {
        let e = Estimator::new(0.5);
        assert_eq!(e.ewma(), 0.0);
        e.record(100);
        assert_eq!(e.ewma(), 100.0);
        e.record(200);
        assert_eq!(e.ewma(), 150.0);
        for _ in 0..20 {
            e.record(1000);
        }
        assert!(e.ewma() > 990.0, "ewma converges: {}", e.ewma());
        assert_eq!(e.histogram().count(), 22);
    }
}

//! fgbs-trace — a cross-crate tracing subsystem for the fgbs pipeline.
//!
//! Every pipeline layer (core stages, the work pool, the artifact store,
//! clustering, the GA) records *spans* (named, nested, timed regions),
//! *counters* (deterministic event counts) and *stats* (nondeterministic
//! aggregates such as per-worker queue-wait time) into thread-local
//! shards. A global sink drains the shards into a [`Trace`] that can be
//! exported as Chrome `chrome://tracing` JSON ([`chrome::to_chrome`]),
//! aggregated into a per-stage summary table ([`summary`]), or folded
//! into `fgbs-serve`'s `/metrics` registry.
//!
//! # Determinism
//!
//! The pipeline's bitwise-determinism contract extends to traces: span
//! *content* — names, nesting, argument values and counter totals — is
//! identical for any `--threads N`, even though timestamps, durations
//! and thread ids vary run to run. Two mechanisms make this hold:
//!
//! 1. **Parent inheritance.** Work submitted to `fgbs-pool` runs on
//!    worker threads; the pool captures the submitting thread's open
//!    span id and installs it via [`inherit_parent`], so spans recorded
//!    inside workers graft under the same logical parent they would
//!    have had inline.
//! 2. **The counter/stat split.** Quantities that depend on scheduling
//!    (chunk counts, steal counts, queue waits, cache races) are
//!    recorded as *stats* and excluded from [`Trace::digest`];
//!    deterministic counts (items processed, Ward merges, GA cache
//!    hits) are *counters* and included.
//!
//! [`Trace::digest`] renders the span forest canonically (children
//! sorted, ids/timestamps/tids ignored) so tests can assert tree
//! equality across thread counts.
//!
//! Recording is cheap enough to leave on (see `crates/bench/benches/
//! trace.rs`): a span is one relaxed atomic load when disabled, and two
//! timestamps plus a thread-local push when enabled — records buffer in
//! unsynchronised thread-local storage and reach the shared shard in
//! batched flushes ([`flush`]), so the hot path takes no lock.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// The span clock: monotonic nanoseconds since the trace epoch.
///
/// `clock_gettime` costs ~45 ns per read on some kernels and VMs, and a
/// span needs two reads — that alone would blow the sub-100 ns span
/// budget. On x86-64 the invariant timestamp counter is read directly
/// (~10 ns) and converted to nanoseconds with a rate calibrated against
/// the OS clock once at startup; other architectures fall back to
/// [`std::time::Instant`].
#[cfg(target_arch = "x86_64")]
mod clock {
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    struct Calib {
        base: u64,
        ns_per_tick: f64,
    }

    #[inline]
    fn tsc() -> u64 {
        // SAFETY: `_rdtsc` has no safety preconditions — it reads the
        // timestamp counter, present on every x86-64 CPU.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    static CALIB: OnceLock<Calib> = OnceLock::new();

    /// Measure the tick rate against the OS clock over a short spin.
    fn calibrate() -> Calib {
        let base = tsc();
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let ticks = tsc().wrapping_sub(base).max(1);
        Calib {
            base,
            ns_per_tick: t0.elapsed().as_nanos() as f64 / ticks as f64,
        }
    }

    /// Pin the trace epoch, paying the one-time calibration spin.
    pub fn init() {
        CALIB.get_or_init(calibrate);
    }

    /// Monotonic nanoseconds since [`init`]. Saturates (rather than
    /// wrapping) under the few-tick cross-core counter skew x86
    /// permits.
    #[inline]
    pub fn now_ns() -> u64 {
        let c = CALIB.get_or_init(calibrate);
        (tsc().saturating_sub(c.base) as f64 * c.ns_per_tick) as u64
    }
}

/// Portable fallback span clock (see the x86-64 variant above).
#[cfg(not(target_arch = "x86_64"))]
mod clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Pin the trace epoch.
    pub fn init() {
        EPOCH.get_or_init(Instant::now);
    }

    /// Monotonic nanoseconds since [`init`].
    #[inline]
    pub fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

pub mod chrome;
pub mod flightrec;
pub mod hist;
pub mod json;
pub mod summary;

pub use json::Json;

/// Counter names every drain reports, even at zero, so batch traces
/// always carry the full pool/store/GA vocabulary.
pub const DECLARED_COUNTERS: &[&str] = &[
    "bench.cases",
    "cluster.merges",
    "cluster.pairs",
    "exec.jobs",
    "fault.injected",
    "fault.retries",
    "ga.cache_hits",
    "ga.cache_misses",
    "ga.evaluations",
    "ga.warm_entries",
    "pool.items",
    "pool.maps",
    "profile.codelets",
    "store.evictions",
    "store.hits",
    "store.misses",
    "store.puts",
    "store.quarantines",
];

/// A span or counter argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (counts, sizes, ids).
    U64(u64),
    /// A float (fitness values, errors); rendered with Rust's shortest
    /// round-trip `Display`, which is bitwise-deterministic.
    F64(f64),
    /// A string (target names, suite names).
    Str(String),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One span argument: a static key and its value.
pub type Arg = (&'static str, ArgValue);

/// Deterministic key/value span arguments, in insertion order. The
/// first lives inline in the record — the common instrumentation shape
/// costs no heap allocation and no extra record bytes on the span hot
/// path — and further arguments spill to the heap (only once-per-stage
/// spans carry more than one).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Args {
    inline: Option<Arg>,
    spill: Vec<Arg>,
}

impl Args {
    /// An empty argument list.
    pub const fn new() -> Args {
        Args {
            inline: None,
            spill: Vec::new(),
        }
    }

    /// Append an argument, preserving insertion order.
    #[inline]
    pub fn push(&mut self, key: &'static str, value: ArgValue) {
        if self.inline.is_none() {
            self.inline = Some((key, value));
        } else {
            self.spill.push((key, value));
        }
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        usize::from(self.inline.is_some()) + self.spill.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.inline.is_none()
    }

    /// Iterate the arguments in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Arg> {
        self.inline.iter().chain(self.spill.iter())
    }
}

impl<'a> IntoIterator for &'a Args {
    type Item = &'a Arg;
    type IntoIter = std::iter::Chain<std::option::Iter<'a, Arg>, std::slice::Iter<'a, Arg>>;

    fn into_iter(self) -> Self::IntoIter {
        self.inline.iter().chain(self.spill.iter())
    }
}

impl From<Vec<Arg>> for Args {
    fn from(list: Vec<Arg>) -> Args {
        let mut args = Args::new();
        for (k, v) in list {
            args.push(k, v);
        }
        args
    }
}

/// One completed span: a named region with nesting (via `parent`),
/// monotonic timestamps and optional arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (`tid << 40 | per-thread sequence`).
    pub id: u64,
    /// Id of the enclosing span, if any. Spans recorded on pool workers
    /// point at the submitting thread's span via [`inherit_parent`].
    pub parent: Option<u64>,
    /// Span name (`stage.reduce`, `cluster.distance`, ...).
    pub name: &'static str,
    /// Trace-local thread id (not the OS tid).
    pub tid: u64,
    /// Start, in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Ambient request id when the span closed (0 = none). Contextual,
    /// like `tid`: excluded from [`Trace::digest`].
    pub request: u64,
    /// Deterministic key/value arguments, in insertion order.
    pub args: Args,
}

/// Cumulative per-span-name aggregate, maintained independently of the
/// rolling span buffer so capacity drops never lose totals.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTotal {
    /// Span name.
    pub name: String,
    /// Completed spans with this name since the last drain.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
}

/// Everything the collector gathered between two drains.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Completed spans, ordered by start time.
    pub spans: Vec<SpanRecord>,
    /// Deterministic counters, sorted by name ([`DECLARED_COUNTERS`]
    /// are always present, others appear once bumped).
    pub counters: Vec<(String, u64)>,
    /// Nondeterministic aggregates (queue waits, coalesce counts),
    /// sorted by name. Excluded from [`Trace::digest`].
    pub stats: Vec<(String, u64)>,
    /// Cumulative per-name span aggregates, sorted by name.
    pub span_totals: Vec<SpanTotal>,
    /// Spans evicted from the rolling buffer (0 unless a capacity is
    /// set via [`set_capacity`]).
    pub dropped: u64,
}

impl Trace {
    /// Look up a counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// All spans with the given name, in start order.
    pub fn spans_named<'a>(&'a self, name: &str) -> Vec<&'a SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Canonical rendering of the span forest plus counters, invariant
    /// under thread count: ids, timestamps and tids are ignored,
    /// siblings are sorted by their canonical form, and roots are
    /// sorted. Two runs of the same pipeline produce equal digests for
    /// any `--threads N`.
    pub fn digest(&self) -> String {
        let index: HashMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            match s.parent.and_then(|p| index.get(&p)) {
                Some(&p) => children[p].push(i),
                None => roots.push(i),
            }
        }

        fn canon(i: usize, spans: &[SpanRecord], children: &[Vec<usize>]) -> String {
            let s = &spans[i];
            let mut out = String::from(s.name);
            if !s.args.is_empty() {
                out.push('{');
                for (j, (k, v)) in s.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push('=');
                    out.push_str(&v.to_string());
                }
                out.push('}');
            }
            if !children[i].is_empty() {
                let mut kids: Vec<String> = children[i]
                    .iter()
                    .map(|&c| canon(c, spans, children))
                    .collect();
                kids.sort();
                out.push('(');
                out.push_str(&kids.join(","));
                out.push(')');
            }
            out
        }

        let mut lines: Vec<String> = roots
            .iter()
            .map(|&r| canon(r, &self.spans, &children))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        out.push_str("\n#counters\n");
        for (k, v) in &self.counters {
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collector internals
// ---------------------------------------------------------------------

#[derive(Default)]
struct Shard {
    events: VecDeque<SpanRecord>,
    counters: HashMap<&'static str, u64>,
    stats: HashMap<String, u64>,
    /// Aggregates of spans already evicted from `events` (capacity
    /// drops); live-span aggregates are computed at collect time so the
    /// record hot path never touches a map.
    totals: HashMap<&'static str, (u64, u64)>,
    dropped: u64,
}

/// Span records buffered per thread before one locked append into the
/// shard — keeps the mutex (and eviction bookkeeping) off the hot path.
const FLUSH_EVERY: usize = 64;

/// Move `pending` into the shard, evicting the oldest events beyond the
/// configured capacity (their aggregates fold into `Shard::totals`).
fn flush_pending(shard: &Mutex<Shard>, pending: &mut Vec<SpanRecord>) {
    if pending.is_empty() {
        return;
    }
    let cap = CAPACITY.load(Ordering::Relaxed);
    let mut s = shard.lock();
    s.events.extend(pending.drain(..));
    if cap > 0 && s.events.len() > cap {
        let Shard {
            events,
            totals,
            dropped,
            ..
        } = &mut *s;
        // Evict down to half capacity in one batch. The ring buffer
        // makes each eviction O(1), and consecutive evictions
        // overwhelmingly share a span name, so a last-name memo touches
        // the aggregate map once per run instead of once per record.
        let excess = events.len() - cap / 2;
        let mut memo: Option<(&'static str, u64, u64)> = None;
        let fold = |totals: &mut HashMap<&'static str, (u64, u64)>, (name, count, ns)| {
            let agg = totals.entry(name).or_insert((0, 0));
            agg.0 += count;
            agg.1 += ns;
        };
        for _ in 0..excess {
            let r = events.pop_front().expect("excess is at most len");
            match &mut memo {
                Some((name, count, ns)) if std::ptr::eq::<str>(*name, r.name) => {
                    *count += 1;
                    *ns += r.dur_ns;
                }
                _ => {
                    if let Some(run) = memo.take() {
                        fold(totals, run);
                    }
                    memo = Some((r.name, 1, r.dur_ns));
                }
            }
        }
        if let Some(run) = memo {
            fold(totals, run);
        }
        *dropped += excess as u64;
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Vec<Arc<Mutex<Shard>>>> = Mutex::new(Vec::new());

struct Tls {
    shard: Arc<Mutex<Shard>>,
    tid: u64,
    seq: u64,
    stack: Vec<u64>,
    inherit: Option<u64>,
    pending: Vec<SpanRecord>,
}

impl Drop for Tls {
    fn drop(&mut self) {
        // Thread exit: whatever is still buffered must reach the shard,
        // which outlives us via the registry.
        let shard = Arc::clone(&self.shard);
        flush_pending(&shard, &mut self.pending);
    }
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

#[inline]
fn with_tls<R>(f: impl FnOnce(&mut Tls) -> R) -> R {
    TLS.with(|cell| {
        let mut slot = cell.borrow_mut();
        let tls = slot.get_or_insert_with(|| {
            let shard = Arc::new(Mutex::new(Shard::default()));
            REGISTRY.lock().push(Arc::clone(&shard));
            Tls {
                shard,
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                seq: 0,
                stack: Vec::new(),
                inherit: None,
                pending: Vec::with_capacity(FLUSH_EVERY),
            }
        });
        f(tls)
    })
}

/// Globally enable or disable recording. Disabled (the default), every
/// entry point is a single relaxed atomic load. Enabling also arms the
/// [`flightrec`] recorder (the always-on diagnostic window); call
/// [`flightrec::arm`]`(false)` afterwards to trace without it.
pub fn set_enabled(on: bool) {
    clock::init(); // pin the epoch (and calibrate) before the first span
    ENABLED.store(on, Ordering::Relaxed);
    flightrec::arm(on);
}

// ---------------------------------------------------------------------
// Request-scoped context
// ---------------------------------------------------------------------

static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_REQUEST: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Allocate a fresh process-unique request id (monotonic from 1). The
/// daemon calls this once per HTTP request; the CLI once per
/// invocation. 0 is reserved for "no request".
pub fn next_request_id() -> u64 {
    NEXT_REQUEST.fetch_add(1, Ordering::Relaxed)
}

/// The request id installed on this thread (0 = none). Spans and
/// flight-recorder events stamp this at record time; works whether or
/// not tracing is enabled.
#[inline]
pub fn current_request_id() -> u64 {
    CURRENT_REQUEST.with(std::cell::Cell::get)
}

/// Install `id` as the ambient request id on this thread until the
/// guard drops (restoring the previous value). The pool captures the
/// submitting thread's request id and re-enters it on workers, so the
/// id follows the work wherever it runs — the propagation contract in
/// DESIGN.md §6h.
#[must_use = "the request id is uninstalled when the guard drops"]
pub fn enter_request(id: u64) -> RequestGuard {
    let prev = CURRENT_REQUEST.with(|c| c.replace(id));
    RequestGuard { prev }
}

/// Guard restoring the previous request id on drop. Obtain via
/// [`enter_request`].
#[derive(Debug)]
pub struct RequestGuard {
    prev: u64,
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_REQUEST.with(|c| c.set(prev));
    }
}

/// This thread's trace-local thread id (allocating one if the thread
/// has not recorded yet). Shared with [`flightrec`] so span `tid`s and
/// flight-recorder `tid`s agree.
pub(crate) fn thread_tid() -> u64 {
    with_tls(|t| t.tid)
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds on the calibrated span clock (TSC on x86-64,
/// `Instant` elsewhere). This is the clock every span timestamp uses;
/// exposing it lets external measurement harnesses (the benchmark
/// barometer) share one time source with the traces they emit. The
/// first call pays the one-time calibration spin.
#[inline]
pub fn now_ns() -> u64 {
    clock::now_ns()
}

/// Cap each thread's span buffer (oldest spans are evicted and counted
/// in [`Trace::dropped`]). `0` (the default) means unbounded — required
/// for digest comparisons. The daemon sets a cap so `/trace` serves a
/// rolling window.
pub fn set_capacity(per_thread_spans: usize) {
    CAPACITY.store(per_thread_spans, Ordering::Relaxed);
}

/// Begin a span. The returned guard records the span into the calling
/// thread's shard when dropped; nesting follows guard scopes (LIFO).
#[must_use = "a span measures the scope of its guard"]
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            id: 0,
            parent: None,
            name,
            live: false,
            start_ns: 0,
            args: Args::new(),
        };
    }
    let start_ns = clock::now_ns();
    with_tls(|t| {
        t.seq += 1;
        let id = (t.tid << 40) | t.seq;
        let parent = t.stack.last().copied().or(t.inherit);
        t.stack.push(id);
        Span {
            id,
            parent,
            name,
            live: true,
            start_ns,
            args: Args::new(),
        }
    })
}

/// An open span; recorded on drop. Obtain via [`span`].
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    live: bool,
    start_ns: u64,
    args: Args,
}

impl Span {
    /// Attach an unsigned-integer argument.
    #[inline]
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        if self.live {
            self.args.push(key, ArgValue::U64(value));
        }
    }

    /// Attach a float argument (must be a deterministic quantity).
    #[inline]
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        if self.live {
            self.args.push(key, ArgValue::F64(value));
        }
    }

    /// Attach a string argument.
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) {
        if self.live {
            self.args.push(key, ArgValue::Str(value.into()));
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let dur_ns = clock::now_ns().saturating_sub(self.start_ns);
        let args = std::mem::take(&mut self.args);
        let (id, parent, name, start_ns) = (self.id, self.parent, self.name, self.start_ns);
        let request = current_request_id();
        let recorded = with_tls(|t| {
            // Close any children left open (a forgotten guard) so the
            // stack stays LIFO-consistent; a span already closed by its
            // parent records nothing.
            let Some(pos) = t.stack.iter().rposition(|&open| open == id) else {
                return false;
            };
            t.stack.truncate(pos);
            t.pending.push(SpanRecord {
                id,
                parent,
                name,
                tid: t.tid,
                start_ns,
                dur_ns,
                request,
                args,
            });
            if t.pending.len() >= FLUSH_EVERY {
                flush_pending(&t.shard, &mut t.pending);
            }
            true
        });
        if recorded {
            // Reuse the span's end timestamp — the recorder path pays
            // no second clock read.
            flightrec::record_at(
                start_ns.saturating_add(dur_ns),
                flightrec::EventKind::Span,
                name,
                dur_ns,
            );
        }
    }
}

/// Bump a deterministic counter. Counter totals must be invariant under
/// thread count — they are part of [`Trace::digest`]. For quantities
/// that depend on scheduling, use [`stat`].
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_tls(|t| {
        *t.shard.lock().counters.entry(name).or_insert(0) += delta;
    });
    if flightrec::armed() {
        flightrec::record_at(clock::now_ns(), flightrec::EventKind::Counter, name, delta);
    }
}

/// Bump a nondeterministic aggregate (per-worker run time, queue wait,
/// coalesce counts). Stats are reported but excluded from digests.
pub fn stat(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_tls(|t| {
        *t.shard.lock().stats.entry(name.to_string()).or_insert(0) += delta;
    });
}

/// The id of the innermost open span on this thread (or the inherited
/// parent), if recording is enabled. The pool captures this before
/// fanning work out to workers.
pub fn current_span_id() -> Option<u64> {
    if !enabled() {
        return None;
    }
    with_tls(|t| t.stack.last().copied().or(t.inherit))
}

/// Install `parent` as the logical parent for root spans recorded on
/// this thread until the guard drops (restoring the previous value).
/// Pool workers call this so their spans graft under the span that was
/// open on the submitting thread.
#[must_use = "the inherited parent is uninstalled when the guard drops"]
pub fn inherit_parent(parent: Option<u64>) -> InheritGuard {
    if !enabled() {
        return InheritGuard { prev: None, set: false };
    }
    let prev = with_tls(|t| std::mem::replace(&mut t.inherit, parent));
    InheritGuard { prev, set: true }
}

/// Guard restoring the previous inherited parent on drop. Obtain via
/// [`inherit_parent`].
#[derive(Debug)]
pub struct InheritGuard {
    prev: Option<u64>,
    set: bool,
}

impl Drop for InheritGuard {
    fn drop(&mut self) {
        if self.set {
            let prev = self.prev.take();
            with_tls(|t| {
                t.inherit = prev;
                // A worker closure is ending: publish its spans so a
                // drain after `map` returns sees them, however long the
                // worker thread itself lives.
                flush_pending(&t.shard, &mut t.pending);
            });
        }
    }
}

/// Flush this thread's buffered span records into its shard, making
/// them visible to [`drain`]/[`snapshot`] from other threads. Called
/// automatically every few dozen spans, when an [`InheritGuard`] drops,
/// at thread exit, and at the start of a drain on the calling thread;
/// long-lived worker threads should call it after finishing a unit of
/// work.
pub fn flush() {
    TLS.with(|cell| {
        if let Some(t) = cell.borrow_mut().as_mut() {
            flush_pending(&t.shard, &mut t.pending);
        }
    });
}

/// Drain every thread's shard: returns all completed spans, counters,
/// stats and aggregates recorded since the previous drain, and resets
/// the collector. Spans still open keep recording into the (now empty)
/// shards.
pub fn drain() -> Trace {
    collect(true)
}

/// Like [`drain`] but non-destructive: copies the current contents
/// without resetting, so a later `drain` still sees everything.
pub fn snapshot() -> Trace {
    collect(false)
}

fn collect(take: bool) -> Trace {
    flush(); // the caller's own buffered spans must be visible
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut counters: std::collections::BTreeMap<String, u64> = DECLARED_COUNTERS
        .iter()
        .map(|n| (n.to_string(), 0))
        .collect();
    let mut stats: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut totals: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut dropped = 0u64;

    let mut registry = REGISTRY.lock();
    for shard in registry.iter() {
        let mut s = shard.lock();
        // Live events contribute to the per-name aggregates alongside
        // whatever eviction already folded into `totals`.
        for r in &s.events {
            let agg = totals.entry(r.name.to_string()).or_insert((0, 0));
            agg.0 += 1;
            agg.1 += r.dur_ns;
        }
        if take {
            spans.extend(s.events.drain(..));
            for (k, v) in s.counters.drain() {
                *counters.entry(k.to_string()).or_insert(0) += v;
            }
            for (k, v) in s.stats.drain() {
                *stats.entry(k).or_insert(0) += v;
            }
            for (k, (c, t)) in s.totals.drain() {
                let agg = totals.entry(k.to_string()).or_insert((0, 0));
                agg.0 += c;
                agg.1 += t;
            }
            dropped += std::mem::take(&mut s.dropped);
        } else {
            spans.extend(s.events.iter().cloned());
            for (k, v) in &s.counters {
                *counters.entry(k.to_string()).or_insert(0) += v;
            }
            for (k, v) in &s.stats {
                *stats.entry(k.clone()).or_insert(0) += v;
            }
            for (k, (c, t)) in &s.totals {
                let agg = totals.entry(k.to_string()).or_insert((0, 0));
                agg.0 += c;
                agg.1 += t;
            }
            dropped += s.dropped;
        }
    }
    if take {
        // Shards whose thread has exited (only the registry holds them)
        // have been emptied above; prune them.
        registry.retain(|s| Arc::strong_count(s) > 1);
    }
    drop(registry);

    spans.sort_by_key(|s| (s.start_ns, s.id));
    Trace {
        spans,
        counters: counters.into_iter().collect(),
        stats: stats.into_iter().collect(),
        span_totals: totals
            .into_iter()
            .map(|(name, (count, total_ns))| SpanTotal {
                name,
                count,
                total_ns,
            })
            .collect(),
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector (and the flight recorder) are process-global;
    // tests that enable either serialize on this lock so they never
    // observe each other's events. Shared with `flightrec::tests`.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock();
        set_capacity(0);
        set_enabled(true);
        let _ = drain();
        guard
    }

    #[test]
    fn nested_spans_close_lifo_and_link_parents() {
        let _g = exclusive();
        {
            let mut outer = span("outer");
            outer.arg_u64("n", 3);
            {
                let _mid = span("mid");
                let _inner = span("inner");
                // _inner drops before _mid: LIFO.
            }
            let _sibling = span("sibling");
        }
        set_enabled(false);
        let trace = drain();
        assert_eq!(trace.spans.len(), 4);
        let by_name = |n: &str| {
            trace
                .spans
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("span {n} missing"))
        };
        let outer = by_name("outer");
        assert_eq!(outer.parent, None);
        assert_eq!(by_name("mid").parent, Some(outer.id));
        assert_eq!(by_name("inner").parent, Some(by_name("mid").id));
        assert_eq!(by_name("sibling").parent, Some(outer.id));
        assert_eq!(outer.args, Args::from(vec![("n", ArgValue::U64(3))]));
    }

    #[test]
    fn forgotten_child_guard_is_closed_by_its_parent() {
        let _g = exclusive();
        {
            let outer = span("outer");
            let inner = span("inner");
            // Drop out of order: outer first. `inner` is force-closed
            // when `outer` unwinds the stack, and its later drop is a
            // no-op rather than corrupting the stack.
            drop(outer);
            drop(inner);
        }
        {
            let _after = span("after");
        }
        set_enabled(false);
        let trace = drain();
        let after = trace.spans.iter().find(|s| s.name == "after").unwrap();
        assert_eq!(after.parent, None, "stack must be balanced after misuse");
        // `outer` recorded; `inner` was discarded by the forced close.
        assert!(trace.spans.iter().any(|s| s.name == "outer"));
        assert!(!trace.spans.iter().any(|s| s.name == "inner"));
    }

    #[test]
    fn counters_sum_across_threads() {
        let _g = exclusive();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        counter("cluster.pairs", 2);
                    }
                    stat("pool.test_stat", 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        counter("cluster.pairs", 1);
        set_enabled(false);
        let trace = drain();
        assert_eq!(trace.counter("cluster.pairs"), 801);
        assert_eq!(
            trace.stats.iter().find(|(n, _)| n == "pool.test_stat"),
            Some(&("pool.test_stat".to_string(), 4))
        );
        // Declared counters are present even at zero.
        assert!(trace.counters.iter().any(|(n, v)| n == "ga.cache_hits" && *v == 0));
    }

    #[test]
    fn inherited_parent_grafts_worker_spans() {
        let _g = exclusive();
        let parent_id;
        {
            let _outer = span("outer");
            parent_id = current_span_id();
            assert!(parent_id.is_some());
            let pid = parent_id;
            std::thread::spawn(move || {
                let _ctx = inherit_parent(pid);
                let _w = span("worker");
            })
            .join()
            .unwrap();
        }
        set_enabled(false);
        let trace = drain();
        let worker = trace.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, parent_id);
        // Digest renders the worker span as a child of `outer`.
        assert_eq!(trace.digest().lines().next(), Some("outer(worker)"));
    }

    #[test]
    fn digest_ignores_order_and_timing() {
        let _g = exclusive();
        {
            let _root = span("root");
            {
                let mut a = span("a");
                a.arg_f64("x", 0.5);
            }
            let _b = span("b");
        }
        set_enabled(false);
        let t1 = drain();

        set_enabled(true);
        {
            let _root = span("root");
            {
                let _b = span("b");
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            let mut a = span("a");
            a.arg_f64("x", 0.5);
        }
        set_enabled(false);
        let t2 = drain();
        assert_eq!(t1.digest(), t2.digest());
        assert!(t1.digest().starts_with("root(a{x=0.5},b)"));
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let _g = exclusive();
        set_capacity(8);
        for _ in 0..20 {
            let _s = span("tick");
        }
        set_enabled(false);
        let trace = drain();
        set_capacity(0);
        assert!(trace.spans.len() <= 8, "buffer capped: {}", trace.spans.len());
        assert_eq!(trace.spans.len() as u64 + trace.dropped, 20);
        // Cumulative aggregates survive eviction.
        let total = trace.span_totals.iter().find(|t| t.name == "tick").unwrap();
        assert_eq!(total.count, 20);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = exclusive();
        set_enabled(false);
        {
            let mut s = span("ghost");
            s.arg_u64("n", 1);
            counter("cluster.pairs", 5);
        }
        let trace = drain();
        assert!(trace.spans.is_empty());
        assert_eq!(trace.counter("cluster.pairs"), 0);
    }

    #[test]
    fn digest_is_thread_invariant_with_the_recorder_armed() {
        let _g = exclusive();
        flightrec::arm(true);
        // Inline run: chunks nest directly under root.
        {
            let _root = span("root");
            for _ in 0..3 {
                let _c = span("chunk");
                counter("pool.items", 1);
            }
        }
        set_enabled(false);
        let t1 = drain();

        // Worker run: same forest via inherit_parent, each chunk under
        // a different request id — contextual fields (tid, request)
        // must not perturb the digest.
        set_enabled(true);
        {
            let _root = span("root");
            let pid = current_span_id();
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    std::thread::spawn(move || {
                        let _ctx = inherit_parent(pid);
                        let _rq = enter_request(70 + i);
                        let _c = span("chunk");
                        counter("pool.items", 1);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        set_enabled(false);
        let t2 = drain();
        assert_eq!(t1.digest(), t2.digest());
        // The recorder did observe the spans...
        assert!(flightrec::dump().iter().any(|e| e.name == "chunk"));
        // ...and stamped the worker ones with their request ids.
        assert!(flightrec::dump_for(71).iter().any(|e| e.name == "chunk"));
    }

    #[test]
    fn request_guard_nests_and_restores() {
        assert_eq!(current_request_id(), 0);
        let outer = enter_request(5);
        assert_eq!(current_request_id(), 5);
        {
            let _inner = enter_request(6);
            assert_eq!(current_request_id(), 6);
        }
        assert_eq!(current_request_id(), 5);
        drop(outer);
        assert_eq!(current_request_id(), 0);
        assert!(next_request_id() < next_request_id(), "monotonic ids");
    }

    #[test]
    fn snapshot_does_not_reset() {
        let _g = exclusive();
        {
            let _s = span("kept");
        }
        counter("pool.items", 3);
        let snap = snapshot();
        assert_eq!(snap.spans.len(), 1);
        set_enabled(false);
        let drained = drain();
        assert_eq!(drained.spans.len(), 1, "snapshot must not consume spans");
        assert_eq!(drained.counter("pool.items"), 3);
    }
}

//! Chrome `chrome://tracing` / Perfetto JSON export.
//!
//! [`to_chrome`] serializes a [`Trace`] in the Trace Event Format:
//! spans become `"X"` (complete) events with microsecond timestamps,
//! counters and stats become `"C"` (counter) events distinguished by
//! their `cat` field, and `"M"` (metadata) events name the process and
//! threads. The span's `id` and `parent` ride along in `args` so the
//! file is a complete serialization of the span forest, not just a
//! flame view.

use crate::{ArgValue, Json, Trace};

/// The synthetic process id used for all fgbs events.
const PID: u64 = 1;

/// Serialize `trace` as a Chrome Trace Event Format document.
pub fn to_chrome(trace: &Trace) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(trace.spans.len() + 16);

    events.push(Json::obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::U64(PID)),
        ("tid", Json::U64(0)),
        ("args", Json::obj(vec![("name", Json::str("fgbs"))])),
    ]));
    let mut tids: Vec<u64> = trace.spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::U64(PID)),
            ("tid", Json::U64(tid)),
            ("args", Json::obj(vec![("name", Json::str(format!("fgbs-thread-{tid}")))])),
        ]));
    }

    let mut end_us = 0.0f64;
    for span in &trace.spans {
        let ts = span.start_ns as f64 / 1000.0;
        let dur = span.dur_ns as f64 / 1000.0;
        end_us = end_us.max(ts + dur);
        let mut args = vec![("id", Json::U64(span.id))];
        if let Some(parent) = span.parent {
            args.push(("parent", Json::U64(parent)));
        }
        // Perfetto timelines filter per request on this arg
        // (`args.req = N` in a track query).
        if span.request != 0 {
            args.push(("req", Json::U64(span.request)));
        }
        for (key, value) in &span.args {
            args.push((
                key,
                match value {
                    ArgValue::U64(v) => Json::U64(*v),
                    ArgValue::F64(v) => Json::Num(*v),
                    ArgValue::Str(s) => Json::str(s.clone()),
                },
            ));
        }
        events.push(Json::obj(vec![
            ("name", Json::str(span.name)),
            ("cat", Json::str("fgbs")),
            ("ph", Json::str("X")),
            ("ts", Json::Num(ts)),
            ("dur", Json::Num(dur)),
            ("pid", Json::U64(PID)),
            ("tid", Json::U64(span.tid)),
            ("args", Json::Obj(args.into_iter().map(|(k, v)| (k.to_string(), v)).collect())),
        ]));
    }

    for (name, value) in &trace.counters {
        events.push(counter_event(name, *value, "counter", end_us));
    }
    for (name, value) in &trace.stats {
        events.push(counter_event(name, *value, "stat", end_us));
    }
    if trace.dropped > 0 {
        events.push(counter_event("trace.dropped", trace.dropped, "meta", end_us));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

fn counter_event(name: &str, value: u64, cat: &str, ts_us: f64) -> Json {
    Json::obj(vec![
        ("name", Json::str(name)),
        ("cat", Json::str(cat)),
        ("ph", Json::str("C")),
        ("ts", Json::Num(ts_us)),
        ("pid", Json::U64(PID)),
        ("tid", Json::U64(0)),
        ("args", Json::obj(vec![("value", Json::U64(value))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRecord;

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    name: "stage.reduce",
                    tid: 0,
                    start_ns: 1_000,
                    dur_ns: 5_000,
                    request: 7,
                    args: vec![("k", ArgValue::U64(4)), ("err", ArgValue::F64(0.5))].into(),
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "cluster.distance",
                    tid: 0,
                    start_ns: 1_500,
                    dur_ns: 2_000,
                    request: 0,
                    args: crate::Args::new(),
                },
            ],
            counters: vec![("cluster.merges".to_string(), 9)],
            stats: vec![("pool.w0.run_us".to_string(), 123)],
            span_totals: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn exports_complete_and_counter_events() {
        let doc = to_chrome(&sample_trace());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert!(phases.contains(&"M"));
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "C").count(), 2);

        let x = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("stage.reduce"))
            .unwrap();
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(5.0));
        let args = x.get("args").unwrap();
        assert_eq!(args.get("k").and_then(Json::as_u64), Some(4));
        assert_eq!(args.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(args.get("req").and_then(Json::as_u64), Some(7));

        let child = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("cluster.distance"))
            .unwrap();
        assert_eq!(child.get("args").unwrap().get("parent").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        // Integral floats reparse as integers (`1` not `1.0`), so the
        // invariant is render-stability, not node-level equality.
        let rendered = to_chrome(&sample_trace()).render();
        let reparsed = Json::parse(&rendered).expect("emitted trace must parse");
        assert_eq!(reparsed.render(), rendered);
    }
}

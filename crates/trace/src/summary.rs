//! Strict validation and aggregation of Chrome-format trace files.
//!
//! `fgbs trace summary <file>` parses the emitted JSON with
//! [`Json::parse`], validates every event against the Trace Event
//! Format subset fgbs emits ([`summarize`] rejects anything malformed)
//! and renders a per-span-name table plus counter/stat listings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Json;

/// Aggregate of all complete (`"X"`) events sharing one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: f64,
    /// Shortest span, microseconds.
    pub min_us: f64,
    /// Longest span, microseconds.
    pub max_us: f64,
}

/// Everything `fgbs trace summary` extracts from a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeSummary {
    /// Per-span-name aggregates, by total duration descending.
    pub rows: Vec<SummaryRow>,
    /// Counter (`cat == "counter"`) final values, by name.
    pub counters: Vec<(String, u64)>,
    /// Stat (`cat == "stat"`) final values, by name.
    pub stats: Vec<(String, u64)>,
    /// Total events in the file (all phases).
    pub events: usize,
}

/// Validate a parsed Chrome trace document and aggregate it. Strict:
/// the document must be an object with a `traceEvents` array, and every
/// event must be an object carrying the fields its phase requires
/// (`X`: name/ts/dur/pid/tid, `C`: name/args.value, `M`: name). Unknown
/// phases are rejected so a corrupt emitter cannot slip through.
pub fn summarize(doc: &Json) -> Result<ChromeSummary, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing 'traceEvents'")?
        .as_arr()
        .ok_or("'traceEvents' is not an array")?;

    let mut spans: BTreeMap<String, SummaryRow> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut stats: BTreeMap<String, u64> = BTreeMap::new();

    for (i, event) in events.iter().enumerate() {
        let fail = |what: &str| format!("event {i}: {what}");
        if !matches!(event, Json::Obj(_)) {
            return Err(fail("not an object"));
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string 'name'"))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string 'ph'"))?;
        match ph {
            "X" => {
                event
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fail("X event missing numeric 'ts'"))?;
                let dur = event
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fail("X event missing numeric 'dur'"))?;
                event
                    .get("pid")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("X event missing 'pid'"))?;
                event
                    .get("tid")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("X event missing 'tid'"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(fail("X event has invalid 'dur'"));
                }
                let row = spans.entry(name.to_string()).or_insert(SummaryRow {
                    name: name.to_string(),
                    count: 0,
                    total_us: 0.0,
                    min_us: f64::INFINITY,
                    max_us: 0.0,
                });
                row.count += 1;
                row.total_us += dur;
                row.min_us = row.min_us.min(dur);
                row.max_us = row.max_us.max(dur);
            }
            "C" => {
                let value = event
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("C event missing integer 'args.value'"))?;
                let cat = event.get("cat").and_then(Json::as_str).unwrap_or("counter");
                match cat {
                    "stat" => {
                        stats.insert(name.to_string(), value);
                    }
                    _ => {
                        counters.insert(name.to_string(), value);
                    }
                }
            }
            "M" => {
                event.get("args").ok_or_else(|| fail("M event missing 'args'"))?;
            }
            other => return Err(fail(&format!("unknown phase {other:?}"))),
        }
    }

    let mut rows: Vec<SummaryRow> = spans.into_values().collect();
    rows.sort_by(|a, b| {
        b.total_us
            .partial_cmp(&a.total_us)
            .expect("finite totals")
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok(ChromeSummary {
        rows,
        counters: counters.into_iter().collect(),
        stats: stats.into_iter().collect(),
        events: events.len(),
    })
}

impl ChromeSummary {
    /// Render the aggregated per-stage table plus counters and stats.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>14} {:>12} {:>12}",
            "span", "count", "total ms", "mean us", "max us"
        );
        for row in &self.rows {
            let mean = row.total_us / row.count as f64;
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>14.3} {:>12.1} {:>12.1}",
                row.name,
                row.count,
                row.total_us / 1000.0,
                mean,
                row.max_us
            );
        }
        if self.rows.is_empty() {
            let _ = writeln!(out, "(no spans)");
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !self.stats.is_empty() {
            let _ = writeln!(out, "\nstats:");
            for (name, value) in &self.stats {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chrome, ArgValue, SpanRecord, Trace};

    fn sample() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    name: "stage.reduce",
                    tid: 0,
                    start_ns: 0,
                    dur_ns: 4_000,
                    request: 0,
                    args: vec![("k", ArgValue::U64(3))].into(),
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "cluster.linkage",
                    tid: 0,
                    start_ns: 500,
                    dur_ns: 1_000,
                    request: 0,
                    args: crate::Args::new(),
                },
                SpanRecord {
                    id: 3,
                    parent: Some(1),
                    name: "cluster.linkage",
                    tid: 1,
                    start_ns: 900,
                    dur_ns: 3_000,
                    request: 0,
                    args: crate::Args::new(),
                },
            ],
            counters: vec![("cluster.merges".to_string(), 5)],
            stats: vec![("pool.w1.run_us".to_string(), 77)],
            span_totals: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn round_trips_and_aggregates() {
        let rendered = chrome::to_chrome(&sample()).render();
        let parsed = Json::parse(&rendered).expect("emitted trace must parse");
        let summary = summarize(&parsed).expect("emitted trace must validate");

        assert_eq!(summary.rows.len(), 2);
        let linkage = summary.rows.iter().find(|r| r.name == "cluster.linkage").unwrap();
        assert_eq!(linkage.count, 2);
        assert!((linkage.total_us - 4.0).abs() < 1e-9);
        assert!((linkage.min_us - 1.0).abs() < 1e-9);
        assert!((linkage.max_us - 3.0).abs() < 1e-9);
        assert_eq!(summary.counters, vec![("cluster.merges".to_string(), 5)]);
        assert_eq!(summary.stats, vec![("pool.w1.run_us".to_string(), 77)]);

        let table = summary.render();
        assert!(table.contains("stage.reduce"), "{table}");
        assert!(table.contains("cluster.merges = 5"), "{table}");
    }

    #[test]
    fn rejects_malformed_events() {
        for (doc, why) in [
            (r#"{"foo":[]}"#, "no traceEvents"),
            (r#"{"traceEvents":{}}"#, "not an array"),
            (r#"{"traceEvents":[{"ph":"X"}]}"#, "missing name"),
            (r#"{"traceEvents":[{"name":"a","ph":"Z"}]}"#, "unknown phase"),
            (
                r#"{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":0}]}"#,
                "missing dur",
            ),
            (
                r#"{"traceEvents":[{"name":"a","ph":"C","args":{}}]}"#,
                "missing value",
            ),
        ] {
            let parsed = Json::parse(doc).unwrap();
            assert!(summarize(&parsed).is_err(), "should reject: {why}");
        }
    }
}

//! The flight recorder: an always-on, bounded window of recent events.
//!
//! Traces answer "what happened in the run I instrumented"; the flight
//! recorder answers "what just happened in the process that failed".
//! Every thread owns a fixed-capacity ring of compact [`Event`]
//! records (closed spans, counter bumps, explicit notes). Recording
//! overwrites the oldest slot, costs no allocation after warm-up, and
//! touches only the owning thread's ring through an uncontended
//! per-thread lock — the `obs/flightrec_record` barometer entry gates
//! the whole path under 50 ns/event, so the recorder stays armed in
//! production.
//!
//! When something goes wrong — a panic, a 503/deadline expiry, a
//! quarantined artifact, an armed failpoint firing — the failing site
//! calls [`trigger`], which merges every thread's ring into a
//! time-sorted [`Dump`] and hands it to the installed sink (the serve
//! daemon persists dumps as `diagnostic` store artifacts keyed by
//! request id; see `fgbs flightrec show`). A thread-local re-entrancy
//! latch makes a sink that itself trips a failpoint safe: the nested
//! trigger records an event but never recurses into another dump.
//!
//! Events carry the ambient request id ([`crate::current_request_id`])
//! so a dump window can be filtered to the request that failed even
//! though rings interleave events from concurrent requests.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Json;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What kind of occurrence an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span closed; `value` is its duration in nanoseconds.
    Span,
    /// A counter bumped; `value` is the delta.
    Counter,
    /// An explicit annotation; `value` is caller-defined.
    Note,
    /// A dump trigger fired; `value` is the triggering request id.
    Trigger,
}

impl EventKind {
    /// Stable lowercase name used in dump serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Note => "note",
            EventKind::Trigger => "trigger",
        }
    }
}

/// One flight-recorder record: 40 bytes, fixed layout, no heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds on the trace clock ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// Ambient request id when recorded (0 = none).
    pub request: u64,
    /// Trace-local thread id (matches span `tid`s).
    pub tid: u64,
    /// Occurrence kind.
    pub kind: EventKind,
    /// Event name (span name, counter name, or trigger reason).
    pub name: &'static str,
    /// Kind-dependent payload (duration, delta, request id).
    pub value: u64,
}

/// A merged, time-sorted window of recent events, produced by
/// [`dump`]/[`trigger`].
#[derive(Debug, Clone)]
pub struct Dump {
    /// Why the dump was taken (`"panic"`, `"deadline"`, ...).
    pub reason: String,
    /// The request the failure is attributed to (0 = none).
    pub request: u64,
    /// When the dump was taken, on the trace clock.
    pub ts_ns: u64,
    /// Events from every thread's ring, ascending by timestamp.
    pub events: Vec<Event>,
}

impl Dump {
    /// Serialize as the `diagnostic` artifact body (schema 1).
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("ts_ns", Json::U64(e.ts_ns)),
                    ("req", Json::U64(e.request)),
                    ("tid", Json::U64(e.tid)),
                    ("kind", Json::str(e.kind.as_str())),
                    ("name", Json::str(e.name)),
                    ("value", Json::U64(e.value)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::U64(1)),
            ("reason", Json::str(self.reason.clone())),
            ("request", Json::U64(self.request)),
            ("ts_ns", Json::U64(self.ts_ns)),
            ("events", Json::Arr(events)),
        ])
    }

    /// Only the events recorded under `request` (plus trigger marks).
    pub fn events_for(&self, request: u64) -> Vec<&Event> {
        self.events.iter().filter(|e| e.request == request).collect()
    }
}

// ---------------------------------------------------------------------
// Recorder internals
// ---------------------------------------------------------------------

/// Fixed-capacity overwrite-oldest ring. `head` is the next write slot
/// once the buffer has filled.
struct Ring {
    buf: Vec<Event>,
    head: usize,
    total: u64,
}

impl Ring {
    fn push(&mut self, cap: usize, e: Event) {
        self.total += 1;
        if self.buf.len() < cap {
            self.buf.push(e);
        } else {
            // Capacity can shrink between pushes (tests); clamp.
            let slot = self.head % self.buf.len();
            self.buf[slot] = e;
            self.head = slot + 1;
        }
    }

    fn events(&self) -> Vec<Event> {
        // Oldest-first: the tail after `head`, then the front.
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head.min(self.buf.len())..]);
        out.extend_from_slice(&self.buf[..self.head.min(self.buf.len())]);
        out
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// The dump sink; installed once by the daemon (or a test), invoked by
/// [`trigger`] outside the sink lock.
type Sink = Arc<dyn Fn(&Dump) + Send + Sync>;
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

thread_local! {
    static RING: std::cell::OnceCell<(u64, Arc<Mutex<Ring>>)> = const { std::cell::OnceCell::new() };
    /// Re-entrancy latch: a sink that trips another trigger (e.g. a
    /// store failpoint while persisting the dump) must not recurse.
    static IN_TRIGGER: Cell<bool> = const { Cell::new(false) };
}

fn with_ring<R>(f: impl FnOnce(u64, &Mutex<Ring>) -> R) -> R {
    RING.with(|cell| {
        let (tid, ring) = cell.get_or_init(|| {
            let ring = Arc::new(Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
                total: 0,
            }));
            RINGS.lock().push(Arc::clone(&ring));
            (crate::thread_tid(), ring)
        });
        f(*tid, ring)
    })
}

/// Arm or disarm the recorder. [`crate::set_enabled`] arms it by
/// default alongside tracing; disarming makes [`record_at`] a single
/// relaxed load.
pub fn arm(on: bool) {
    ARMED.store(on, Ordering::Relaxed);
}

/// Whether the recorder is armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Set the per-thread ring capacity (new events; existing rings keep
/// their filled slots). Intended for tests and the daemon.
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.max(1), Ordering::Relaxed);
}

/// Record an event with an explicit timestamp (the span path reuses
/// the span's end timestamp to avoid a second clock read).
#[inline]
pub fn record_at(ts_ns: u64, kind: EventKind, name: &'static str, value: u64) {
    if !armed() {
        return;
    }
    let request = crate::current_request_id();
    let cap = CAPACITY.load(Ordering::Relaxed);
    with_ring(|tid, ring| {
        ring.lock().push(
            cap,
            Event {
                ts_ns,
                request,
                tid,
                kind,
                name,
                value,
            },
        );
    });
}

/// Record an explicit [`EventKind::Note`] stamped with the current
/// trace-clock time.
#[inline]
pub fn note(name: &'static str, value: u64) {
    if !armed() {
        return;
    }
    record_at(crate::now_ns(), EventKind::Note, name, value);
}

/// Merge every thread's ring into one time-sorted window.
pub fn dump() -> Vec<Event> {
    let rings: Vec<Arc<Mutex<Ring>>> = RINGS.lock().iter().map(Arc::clone).collect();
    let mut events: Vec<Event> = Vec::new();
    for ring in rings {
        events.extend(ring.lock().events());
    }
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    events
}

/// Like [`dump`] but keeping only events recorded under `request`.
pub fn dump_for(request: u64) -> Vec<Event> {
    let mut events = dump();
    events.retain(|e| e.request == request);
    events
}

/// Install the dump sink invoked by [`trigger`]. The daemon installs a
/// sink that persists dumps into the artifact store; `Service::new`
/// deliberately does not, so embedded services (and the chaos
/// byte-identity suite) never write diagnostics as a side effect.
pub fn set_sink(sink: impl Fn(&Dump) + Send + Sync + 'static) {
    *SINK.lock() = Some(Arc::new(sink));
}

/// Remove the installed sink, if any.
pub fn clear_sink() {
    *SINK.lock() = None;
}

/// Mark a failure and, if a sink is installed, deliver the merged
/// window to it. Always records a [`EventKind::Trigger`] event (when
/// armed) so the failure is visible in later dumps even without a
/// sink. Nested triggers from inside a sink are recorded but do not
/// produce a second dump.
pub fn trigger(reason: &'static str, request: u64) {
    let ts = crate::now_ns();
    record_at(ts, EventKind::Trigger, reason, request);
    if !armed() {
        return;
    }
    let Some(sink) = SINK.lock().clone() else {
        return;
    };
    let nested = IN_TRIGGER.with(|latch| latch.replace(true));
    if nested {
        return;
    }
    // Reset the latch even if the sink panics (the daemon's panic
    // handler would otherwise never dump again on this thread).
    struct Unlatch;
    impl Drop for Unlatch {
        fn drop(&mut self) {
            IN_TRIGGER.with(|latch| latch.set(false));
        }
    }
    let _unlatch = Unlatch;
    let d = Dump {
        reason: reason.to_string(),
        request,
        ts_ns: ts,
        events: dump(),
    };
    sink(&d);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        // One process-global lock shared with the collector tests: the
        // rings, sink and arming flag are all global state.
        let g = crate::tests::TEST_LOCK.lock();
        clear_sink();
        set_capacity(DEFAULT_RING_CAPACITY);
        arm(true);
        // Drain any prior contents so counts below are exact.
        let rings: Vec<_> = RINGS.lock().iter().map(Arc::clone).collect();
        for r in rings {
            let mut r = r.lock();
            r.buf.clear();
            r.head = 0;
            r.total = 0;
        }
        g
    }

    #[test]
    fn disarmed_recording_is_a_no_op() {
        let _g = exclusive();
        arm(false);
        note("ghost", 1);
        assert!(dump().iter().all(|e| e.name != "ghost"));
    }

    #[test]
    fn ring_overwrites_oldest_and_dump_sorts() {
        let _g = exclusive();
        set_capacity(8);
        for i in 0..20u64 {
            record_at(i, EventKind::Note, "tick", i);
        }
        let events: Vec<Event> = dump().into_iter().filter(|e| e.name == "tick").collect();
        assert_eq!(events.len(), 8, "bounded window");
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, (12..20).collect::<Vec<u64>>(), "oldest evicted, sorted");
        set_capacity(DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn trigger_delivers_a_dump_to_the_sink_once() {
        let _g = exclusive();
        let seen: Arc<Mutex<Vec<(String, u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        set_sink(move |d| {
            // A sink that itself triggers must not recurse.
            trigger("nested", 0);
            sink_seen.lock().push((d.reason.clone(), d.request, d.events.len()));
        });
        note("before", 7);
        trigger("deadline", 42);
        clear_sink();
        let calls = seen.lock().clone();
        assert_eq!(calls.len(), 1, "one dump per trigger, no recursion");
        let (reason, request, n) = &calls[0];
        assert_eq!(reason, "deadline");
        assert_eq!(*request, 42);
        assert!(*n >= 2, "window holds the note and the trigger mark");
    }

    #[test]
    fn dump_for_filters_by_request() {
        let _g = exclusive();
        {
            let _r = crate::enter_request(91);
            note("mine", 1);
        }
        note("ambient", 2);
        let mine = dump_for(91);
        assert!(mine.iter().any(|e| e.name == "mine"));
        assert!(mine.iter().all(|e| e.request == 91));
    }

    #[test]
    fn dump_serializes_and_reparses() {
        let d = Dump {
            reason: "panic".to_string(),
            request: 5,
            ts_ns: 123,
            events: vec![Event {
                ts_ns: 100,
                request: 5,
                tid: 0,
                kind: EventKind::Span,
                name: "stage.reduce",
                value: 999,
            }],
        };
        let rendered = d.to_json().render();
        let parsed = Json::parse(&rendered).expect("dump json parses");
        assert_eq!(parsed.get("reason").and_then(Json::as_str), Some("panic"));
        assert_eq!(parsed.get("request").and_then(Json::as_u64), Some(5));
        let events = parsed.get("events").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("kind").and_then(Json::as_str), Some("span"));
        assert_eq!(events[0].get("value").and_then(Json::as_u64), Some(999));
    }
}

//! Property tests for the log-linear quantile histogram.
//!
//! The contract under test (see `fgbs_trace::hist`): a quantile
//! estimate is never a fabrication — it lies inside the bucket that
//! actually holds the rank-`⌈p·n⌉` sample, it is monotone in `p`, and
//! it is *exact* at the extremes (`p = 0` is the recorded minimum,
//! `p = 1` the recorded maximum). These are the properties the serve
//! `/metrics` p50/p95/p99 and the admission-control estimator rely on.

use fgbs_trace::hist::{bucket_bounds, bucket_index, Histogram};
use proptest::prelude::*;

/// Values spread across the full u64 magnitude range: a uniform draw
/// right-shifted by a uniform amount exercises every octave.
fn value() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..64).prop_map(|(v, shift)| v >> shift)
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(value(), 1..200)
}

proptest! {
    #[test]
    fn every_value_lands_in_its_own_bucket(v in value()) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi, "v={v} outside [{lo}, {hi}]");
    }

    #[test]
    fn quantiles_are_exact_at_the_extremes(vs in values()) {
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        prop_assert_eq!(h.quantile(0.0), *vs.iter().min().unwrap());
        prop_assert_eq!(h.quantile(1.0), *vs.iter().max().unwrap());
        prop_assert_eq!(h.count(), vs.len() as u64);
    }

    #[test]
    fn quantile_estimate_stays_inside_the_rank_sample_bucket(
        vs in values(),
        p in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let truth = sorted[(rank - 1) as usize];
        let (lo, hi) = bucket_bounds(bucket_index(truth));
        let est = h.quantile(p);
        if p > 0.0 {
            prop_assert!(
                lo <= est && est <= hi,
                "p={p} truth={truth} est={est} bucket=[{lo}, {hi}]"
            );
        } else {
            prop_assert_eq!(est, sorted[0]);
        }
    }

    #[test]
    fn quantile_is_monotone_in_p(vs in values(), mut ps in proptest::collection::vec(0.0f64..1.0, 2..20)) {
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        ps.sort_by(f64::total_cmp);
        let qs: Vec<u64> = ps.iter().map(|&p| h.quantile(p)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles regressed: {qs:?} at {ps:?}");
        }
        // The extremes bracket every estimate.
        let (min, max) = (h.quantile(0.0), h.quantile(1.0));
        for &q in &qs {
            prop_assert!(min <= q && q <= max);
        }
    }
}

//! Shared helpers: dataset classes and address-space allocation.

use fgbs_isa::{Binding, BindingBuilder, Codelet};

/// Dataset class, in the spirit of the NAS problem classes. The paper runs
/// NAS with CLASS B; `Test` keeps the same code shapes at sizes suitable
/// for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Tiny datasets for fast tests.
    Test,
    /// Intermediate datasets for examples.
    A,
    /// Full evaluation datasets (the paper's configuration).
    B,
}

// All sizes below are calibrated against the *scaled* machine park
// (`Arch::park_scaled()`, capacities divided by `PARK_SCALE = 8`):
// Nehalem L1 4 KB / L2 32 KB / L3 1.5 MB; Atom L2 64 KB; Core 2 L2 384 KB;
// Sandy Bridge L3 1 MB. Every fits-in/falls-out-of-cache relationship of
// the paper is preserved at this scale (see DESIGN.md).
impl Class {
    /// A small vector length (16 KB: L2-resident on every machine).
    pub fn small_vec(self) -> u64 {
        match self {
            Class::Test => 2_048,
            Class::A => 2_048,
            Class::B => 2_048,
        }
    }

    /// A medium vector length (L2/L3-resident).
    pub fn med_vec(self) -> u64 {
        match self {
            Class::Test => 4_096,
            Class::A => 4_096,
            Class::B => 4_096,
        }
    }

    /// A large vector length (last-level-cache / DRAM working sets).
    pub fn big_vec(self) -> u64 {
        match self {
            Class::Test => 32_768,
            Class::A => 32_768,
            Class::B => 32_768,
        }
    }

    /// Side of a small square matrix.
    pub fn mat_side(self) -> u64 {
        match self {
            Class::Test => 48,
            Class::A => 48,
            Class::B => 48,
        }
    }

    /// Side of a large square matrix (class B: 512² × 8 B = 2 MB/plane).
    pub fn big_mat_side(self) -> u64 {
        match self {
            Class::Test => 96,
            Class::A => 96,
            Class::B => 96,
        }
    }

    /// Number of outer rounds (time steps) for NAS-like schedules.
    pub fn rounds(self) -> u64 {
        match self {
            Class::Test => 2,
            Class::A => 6,
            Class::B => 12,
        }
    }

    /// Side of a solver plane for the BT/SP stencils: the two-plane
    /// working set is ~495 KB on the scaled park — inside Nehalem's
    /// 1.5 MB L3 and Sandy Bridge's 1 MB, outside Core 2's 384 KB L2.
    /// This is the asymmetry behind the paper's cluster-B case study
    /// (memory-bound codelets slower on Core 2 despite its faster clock).
    pub fn plane_side(self) -> u64 {
        match self {
            Class::Test => 176,
            Class::A => 176,
            Class::B => 176,
        }
    }

    /// Side of the triple-nested compute cubes (LU `erhs`, FT `appft`).
    pub fn cube_side(self) -> u64 {
        match self {
            Class::Test => 24,
            Class::A => 24,
            Class::B => 24,
        }
    }

    /// Length of CG's randomly-indexed vector `p`: 48 KB on the scaled
    /// park — larger than Nehalem's (scaled) 32 KB L2, so reference runs
    /// serve `p` from L3 both in-app and standalone (well-behaved), but
    /// smaller than Atom's 64 KB L2, so the standalone microbenchmark
    /// stays warm while in-app invocations are evicted by CG's vector
    /// updates: the paper's CG-on-Atom anomaly.
    pub fn cg_span(self) -> u64 {
        match self {
            Class::Test => 6_000,
            Class::A | Class::B => 6_000,
        }
    }

    /// CG sparse-row stream length (iterations per matvec invocation).
    pub fn cg_rows(self) -> u64 {
        match self {
            Class::Test => 1_024,
            Class::A | Class::B => 1_024,
        }
    }

    /// CG long-vector length: the three shared iteration vectors stream
    /// 192 KB per round — enough to flush Atom's 64 KB L2 between matvec
    /// invocations, small enough (with `p`) to stay inside Core 2's
    /// 384 KB L2 and the reference L3.
    pub fn cg_vec(self) -> u64 {
        match self {
            Class::Test => 8_192,
            Class::A | Class::B => 8_192,
        }
    }

    /// Finest MG grid side; coarser levels halve it.
    pub fn mg_side(self) -> u64 {
        match self {
            Class::Test => 96,
            Class::A => 96,
            Class::B => 96,
        }
    }

    /// IS bucket-table length (32-bit keys).
    pub fn is_buckets(self) -> u64 {
        match self {
            Class::Test => 16_384,
            Class::A => 16_384,
            Class::B => 16_384,
        }
    }

    /// Multiplier on the consecutive-invocation bursts of NAS schedule
    /// entries. Long bursts matter twice: they amortise the cold start so
    /// in-app means match the standalone median (well-behavedness), and
    /// they are what the invocation-reduction factor of Table 5 harvests.
    pub fn repeat_scale(self) -> u64 {
        match self {
            Class::Test => 1,
            Class::A => 2,
            Class::B => 2,
        }
    }
}

/// A bump allocator over one application's virtual address space: every
/// binding built through the same `Alloc` occupies disjoint addresses, so
/// codelets contend in the shared caches exactly as the original program's
/// data would.
#[derive(Debug, Clone)]
pub struct Alloc {
    cursor: u64,
}

impl Alloc {
    /// Start a fresh address space.
    pub fn new() -> Alloc {
        // Leave page zero unused.
        Alloc { cursor: 1 << 12 }
    }

    /// Build a binding for `codelet`: `arrays` is a list of
    /// `(len_elements, lda)` pairs in declaration order, `params` the trip
    /// parameters.
    pub fn bind(&mut self, codelet: &Codelet, arrays: &[(u64, i64)], params: &[u64]) -> Binding {
        let mut bb = BindingBuilder::new(self.cursor);
        for (i, &(len, lda)) in arrays.iter().enumerate() {
            let elem = codelet.arrays[i].elem.bytes();
            bb = bb.matrix(len, elem, lda);
        }
        for &p in params {
            bb = bb.param(p);
        }
        self.cursor = bb.cursor();
        bb.build_for(codelet)
    }

    /// Build a binding for a codelet whose arrays are all 1-D vectors of
    /// the same length.
    pub fn bind_vecs(&mut self, codelet: &Codelet, len: u64, params: &[u64]) -> Binding {
        let arrays: Vec<(u64, i64)> = codelet
            .arrays
            .iter()
            .map(|_| (len, len as i64))
            .collect();
        self.bind(codelet, &arrays, params)
    }

    /// Current cursor (next free address).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Reserve a region for a *shared* array (returns its base address).
    /// Real solvers reuse the same state vectors across many loops;
    /// binding several codelets to one region reproduces both the smaller
    /// application footprint and the producer/consumer cache reuse.
    pub fn reserve(&mut self, len: u64, elem_bytes: u64) -> u64 {
        let base = self.cursor;
        let bytes = len * elem_bytes;
        self.cursor += bytes.div_ceil(fgbs_isa::ELEM_ALIGN) * fgbs_isa::ELEM_ALIGN;
        base
    }

    /// Bind a codelet to explicit (possibly shared) regions:
    /// `(base, len, lda)` per array, declaration order.
    pub fn bind_shared(
        &self,
        codelet: &Codelet,
        arrays: &[(u64, u64, i64)],
        params: &[u64],
    ) -> Binding {
        assert_eq!(arrays.len(), codelet.arrays.len(), "array count mismatch");
        assert_eq!(params.len(), codelet.n_params, "param count mismatch");
        Binding {
            arrays: arrays
                .iter()
                .map(|&(base, len, lda)| fgbs_isa::ArrayBinding { base, lda, len })
                .collect(),
            params: params.to_vec(),
            seed: 0,
        }
    }
}

impl Default for Alloc {
    fn default() -> Self {
        Alloc::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbs_isa::{CodeletBuilder, Precision};

    #[test]
    fn classes_scale_duration_not_shapes() {
        // Cache-behaviour-critical sizes are class-independent; classes
        // scale workload duration (rounds, bursts) only.
        assert_eq!(Class::Test.plane_side(), Class::B.plane_side());
        assert_eq!(Class::Test.cg_span(), Class::B.cg_span());
        assert!(Class::Test.rounds() < Class::A.rounds());
        assert!(Class::A.rounds() < Class::B.rounds());
        assert!(Class::Test.repeat_scale() <= Class::B.repeat_scale());
    }

    #[test]
    fn capacity_relationships_hold_on_scaled_park() {
        use fgbs_machine::Arch;
        let park = Arch::park_scaled();
        let (nhm, atom, c2, sb) = (&park[0], &park[1], &park[2], &park[3]);
        let l2 = |a: &Arch| a.caches[1].size;
        let llc = |a: &Arch| a.caches.last().unwrap().size;

        // Cluster-B stencil: fits Nehalem + Sandy Bridge LLC, not Core 2.
        let stencil_ws = 2 * Class::B.plane_side().pow(2) * 8;
        assert!(stencil_ws < llc(nhm));
        assert!(stencil_ws < llc(sb));
        assert!(stencil_ws > llc(c2));
        assert!(stencil_ws > llc(atom));

        // CG's p: above Nehalem L2, below Atom L2.
        let p_ws = Class::B.cg_span() * 8;
        assert!(p_ws > l2(nhm));
        assert!(p_ws < l2(atom));
        // And the CG vector phase evicts Atom's L2 but fits Core 2's.
        let evictors = 3 * Class::B.cg_vec() * 8 + p_ws;
        assert!(evictors > l2(atom));
        assert!(evictors < l2(c2));
    }

    #[test]
    fn alloc_is_disjoint() {
        let c = CodeletBuilder::new("k", "t")
            .array("x", Precision::F64)
            .array("y", Precision::F64)
            .param_loop("n")
            .store("y", &[1], |b| b.load("x", &[1]))
            .build();
        let mut a = Alloc::new();
        let b1 = a.bind_vecs(&c, 100, &[100]);
        let b2 = a.bind_vecs(&c, 100, &[100]);
        // Second binding is entirely above the first.
        let top1 = b1.arrays[1].base + 100 * 8;
        assert!(b2.arrays[0].base >= top1);
        assert!(a.cursor() > b2.arrays[1].base);
    }

    #[test]
    fn bind_respects_lda() {
        let c = CodeletBuilder::new("m", "t")
            .array("a", Precision::F32)
            .param_loop("n")
            .store("a", &[1], |b| b.constant(0.0))
            .build();
        let mut al = Alloc::new();
        let b = al.bind(&c, &[(64 * 64, 64)], &[64]);
        assert_eq!(b.arrays[0].lda, 64);
        assert_eq!(b.arrays[0].len, 4096);
    }
}

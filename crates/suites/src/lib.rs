//! The benchmark suites of the paper's evaluation, rebuilt as codelet IR.
//!
//! * [`nr_suite`] — the 28 **Numerical Recipes** kernels of Table 3, one
//!   codelet per application (the paper's training set for feature
//!   selection). Computation patterns, access strides, floating-point
//!   precisions and vectorization characters follow the table rows.
//! * [`nas_suite`] — seven **NAS-like** applications (BT, CG, FT, IS, LU,
//!   MG, SP) with 67 extractable codelets between them, invocation
//!   schedules modelled on the original solvers (time-stepping rounds,
//!   multi-level multigrid contexts, a CG dominated by one sparse-matvec
//!   codelet, …) plus non-extractable filler loops so detected codelets
//!   cover roughly 92 % of execution time, as the paper reports.
//! * [`bigdata_suite`] — three **big-data-like** applications (pointer
//!   chasing, hash join, columnar scans) with low FP intensity: the
//!   memory-irregular regime the subsetting must also be validated on.
//!   Their codelets ship as the first first-party snippet pack.
//!
//! Dataset sizes scale with [`Class`]: `Test` for unit/integration tests,
//! `A` for examples, `B` for the full benchmark harness (the paper runs
//! NAS CLASS B).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bigdata;
mod common;
mod nas;
mod nr;

pub use bigdata::{bigdata_app, bigdata_suite, BIGDATA_APPS};
pub use common::{Alloc, Class};
pub use nas::{nas_app, nas_suite, NAS_APPS};
pub use nr::{nr_codelet_names, nr_suite};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nr_has_28_single_codelet_apps() {
        let suite = nr_suite(Class::Test);
        assert_eq!(suite.len(), 28);
        for app in &suite {
            assert_eq!(app.codelets.len(), 1, "{} is a single-kernel code", app.name);
            app.validate();
        }
    }

    #[test]
    fn nas_has_seven_apps() {
        let suite = nas_suite(Class::Test);
        let names: Vec<&str> = suite.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, NAS_APPS);
        for app in &suite {
            app.validate();
        }
    }

    #[test]
    fn nas_extractable_codelet_count_matches_paper_scale() {
        let suite = nas_suite(Class::Test);
        let n: usize = suite.iter().map(|a| a.extractable().len()).sum();
        assert_eq!(n, 67, "the paper's NAS SER decomposition yields 67 codelets");
    }

    #[test]
    fn every_app_has_non_extractable_residue() {
        // CF cannot outline everything; codelets cover ~92 % of time.
        for app in nas_suite(Class::Test) {
            let hidden = app.codelets.iter().filter(|c| !c.extractable).count();
            assert!(hidden >= 1, "{} must have uncovered loops", app.name);
        }
    }

    #[test]
    fn classes_scale_duration() {
        let t = nas_suite(Class::Test);
        let b = nas_suite(Class::B);
        // Same codelets and shapes; class B runs many more invocations.
        assert_eq!(t[0].codelets[0].name, b[0].codelets[0].name);
        assert!(b[0].invocations_of(0) > t[0].invocations_of(0));
        assert_eq!(
            t[0].contexts[0][0].footprint_bytes(&t[0].codelets[0]),
            b[0].contexts[0][0].footprint_bytes(&b[0].codelets[0]),
        );
    }
}

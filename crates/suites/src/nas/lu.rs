//! LU — lower-upper Gauss-Seidel solver.
//!
//! 11 extractable codelets over shared SSOR state. `erhs.f:49-57` is one
//! of the paper's cluster-A twins (triple-nested, divide + exponential,
//! compute bound); `blts`/`buts` are the forward/backward recurrence
//! sweeps; `jacld` is compilation-fragile.

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::{Fragility, Precision};

use super::{compute_cube, fill, flux, norm2, sweep, Alloc};
use crate::common::Class;
use fgbs_isa::CodeletBuilder;

/// Build LU.
pub fn build(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("lu");
    let cs = class.cube_side();
    let md = class.med_vec();

    // Shared state vectors.
    let v_u = al.reserve(md, 8);
    let v_rhs = al.reserve(md, 8);
    let v_a = al.reserve(md, 8);
    let v_b = al.reserve(md, 8);
    let v_c = al.reserve(md, 8);
    let mdv = |base: u64| (base, md, md as i64);

    // 1. The cluster-A compute cube (private).
    let c = compute_cube("lu", "erhs.f:49-57", "erhs.f", 49, 57);
    let lda = (cs * 8 + cs) as i64;
    let len = cs * lda as u64 + 8;
    let b = al.bind(&c, &[(len, lda), (len, lda), (len, lda)], &[cs, cs, cs]);
    let i_cube = ab.codelet(c, vec![b]);

    // 2-3. SSOR sweeps.
    let c = sweep("lu", "blts.f:75-160", 0.52);
    let b = al.bind_shared(&c, &[mdv(v_u), mdv(v_rhs)], &[md - 2]);
    let i_blts = ab.codelet(c, vec![b]);
    let c = sweep("lu", "buts.f:75-160", 0.48);
    let b = al.bind_shared(&c, &[mdv(v_a), mdv(v_rhs)], &[md - 2]);
    let i_buts = ab.codelet(c, vec![b]);

    // 4-5. Jacobian assembly: multiply-dense streams; jacld is fragile.
    let jac = |name: &str, fragility: Fragility| {
        CodeletBuilder::new(name, "lu")
            .pattern("DP: jacobian assembly (multiply dense)")
            .fragility(fragility)
            .array("a", Precision::F64)
            .array("b", Precision::F64)
            .array("c", Precision::F64)
            .array("d", Precision::F64)
            .param_loop("n")
            .store("d", &[1], |bd| {
                bd.load("a", &[1]) * bd.load("b", &[1]) * 0.5
                    + bd.load("c", &[1]) * bd.load("a", &[1]) * 0.25
            })
            .build()
    };
    let c = jac("jacld.f:40-110", Fragility::ScalarWhenStandalone);
    let b = al.bind_shared(&c, &[mdv(v_u), mdv(v_a), mdv(v_b), mdv(v_c)], &[md]);
    let i_jacld = ab.codelet(c, vec![b]);
    let c = jac("jacu.f:40-110", Fragility::Robust);
    let b = al.bind_shared(&c, &[mdv(v_rhs), mdv(v_a), mdv(v_c), mdv(v_b)], &[md]);
    let i_jacu = ab.codelet(c, vec![b]);

    // 6-8. Directional fluxes.
    let mut i_flux = [0usize; 3];
    for (d, (name, c1, c2, out)) in [
        ("rhs.f:30-66x", 0.36, 1.02, v_rhs),
        ("rhs.f:76-112y", 0.31, 1.12, v_a),
        ("rhs.f:122-158z", 0.26, 1.22, v_b),
    ]
    .iter()
    .enumerate()
    {
        let c = flux("lu", name, *c1, *c2);
        let b = al.bind_shared(&c, &[mdv(*out), mdv(v_u)], &[md - 2]);
        i_flux[d] = ab.codelet(c, vec![b]);
    }

    // 9. l2norm.
    let c = norm2("lu", "l2norm.f:10-30");
    let b = al.bind_shared(&c, &[mdv(v_rhs)], &[md]);
    let i_norm = ab.codelet(c, vec![b]);

    // 10. boundary values.
    let c = fill("lu", "setbv.f:12-40", 1.0);
    let b = al.bind_shared(&c, &[mdv(v_u)], &[md]);
    let i_setbv = ab.codelet(c, vec![b]);

    // 11. ssor update.
    let c = super::axpy("lu", "ssor.f:180-205", 1.2);
    let b = al.bind_shared(&c, &[mdv(v_rhs), mdv(v_u)], &[md]);
    let i_ssor = ab.codelet(c, vec![b]);

    // Residue.
    let mut c = flux("lu", "pintgr-glue", 0.14, 0.9);
    c.extractable = false;
    let b = al.bind_shared(&c, &[mdv(v_c), mdv(v_u)], &[md - 2]);
    let i_hidden = ab.codelet(c, vec![b]);

    ab.invoke(i_setbv, 0, 2 * rs)
        .invoke(i_cube, 0, 6 * rs)
        .invoke(i_flux[0], 0, 4 * rs)
        .invoke(i_flux[1], 0, 4 * rs)
        .invoke(i_flux[2], 0, 4 * rs)
        .invoke(i_jacld, 0, 4 * rs)
        .invoke(i_blts, 0, 4 * rs)
        .invoke(i_jacu, 0, 4 * rs)
        .invoke(i_buts, 0, 4 * rs)
        .invoke(i_ssor, 0, 4 * rs)
        .invoke(i_norm, 0, 2 * rs)
        .invoke(i_hidden, 0, 2 * rs)
        .rounds(class.rounds());

    ab.build()
}

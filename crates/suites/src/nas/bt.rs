//! BT — block tri-diagonal solver.
//!
//! 14 extractable codelets. `rhs.f:266-311` is the memory-bound stencil of
//! the paper's cluster-B case study; `x_solve` is compilation-fragile
//! (vectorized in-app, scalar when extracted), one of the ill-behaved
//! codelets. The stream codelets share the solver's state vectors, as the
//! original program does — keeping the application footprint inside the
//! (scaled) reference L3 so repeated invocations run warm.

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::{AffineExpr, Fragility, Precision};

use super::{axpy, fill, flux, norm2, stencil5, vmul, Alloc};
use crate::common::Class;
use fgbs_isa::CodeletBuilder;

/// Build BT.
pub fn build(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("bt");
    let ps = class.plane_side();
    let md = class.med_vec();
    let sm = class.small_vec();

    // Shared state vectors (md f64 elements each).
    let v_u = al.reserve(md, 8);
    let v_rhs = al.reserve(md, 8);
    let v_us = al.reserve(md, 8);
    let v_qs = al.reserve(md, 8);
    let v_sq = al.reserve(md, 8);
    let v_lhs = al.reserve(md, 8);
    let mdv = |base: u64| (base, md, md as i64);

    // 1. The cluster-B stencil (private planes).
    let c = stencil5("bt", "rhs.f:266-311", "rhs.f", 266, 311);
    let planes = (ps * ps, ps as i64);
    let b = al.bind(&c, &[planes, planes], &[ps - 2, ps - 2]);
    let i_stencil = ab.codelet(c, vec![b]);

    // 2-4. Directional flux differences over the shared state.
    let mut i_flux = [0usize; 3];
    for (d, (name, c1, c2, out)) in [
        ("rhs.f:22-57x", 0.35, 1.1, v_rhs),
        ("rhs.f:62-97y", 0.30, 1.2, v_us),
        ("rhs.f:102-137z", 0.25, 1.3, v_qs),
    ]
    .iter()
    .enumerate()
    {
        let c = flux("bt", name, *c1, *c2);
        let b = al.bind_shared(&c, &[mdv(*out), mdv(v_u)], &[md - 2]);
        i_flux[d] = ab.codelet(c, vec![b]);
    }

    // 5. rhs initialisation.
    let c = fill("bt", "rhs.f:13-18", 0.0);
    let b = al.bind_shared(&c, &[mdv(v_rhs)], &[md]);
    let i_init = ab.codelet(c, vec![b]);

    // 6-8. Directional block solvers: divide-heavy streams. x_solve is
    // fragile: the extracted wrapper loses the alignment proof and
    // compiles scalar.
    let solver = |name: &str, fragility: Fragility| {
        CodeletBuilder::new(name, "bt")
            .pattern("DP: block solve with divide")
            .fragility(fragility)
            .array("lhs", Precision::F64)
            .array("a", Precision::F64)
            .array("d", Precision::F64)
            .param_loop("n")
            .store("lhs", &[1], |bd| {
                (bd.load("a", &[1]) - bd.load("lhs", &[1]) * 0.4) / bd.load("d", &[1])
            })
            .build()
    };
    let c = solver("x_solve.f:141-180", Fragility::ScalarWhenStandalone);
    let b = al.bind_shared(&c, &[mdv(v_lhs), mdv(v_u), mdv(v_sq)], &[md]);
    let i_xsolve = ab.codelet(c, vec![b]);
    let c = solver("y_solve.f:141-180", Fragility::Robust);
    let b = al.bind_shared(&c, &[mdv(v_lhs), mdv(v_rhs), mdv(v_sq)], &[md]);
    let i_ysolve = ab.codelet(c, vec![b]);
    let c = solver("z_solve.f:141-180", Fragility::Robust);
    let b = al.bind_shared(&c, &[mdv(v_lhs), mdv(v_us), mdv(v_sq)], &[md]);
    let i_zsolve = ab.codelet(c, vec![b]);

    // 9. add: u += rhs.
    let c = axpy("bt", "add.f:16-30", 1.0);
    let b = al.bind_shared(&c, &[mdv(v_rhs), mdv(v_u)], &[md]);
    let i_add = ab.codelet(c, vec![b]);

    // 10. exact_rhs assembly.
    let c = vmul("bt", "exact_rhs.f:20-40");
    let b = al.bind_shared(&c, &[mdv(v_u), mdv(v_us), mdv(v_qs)], &[md]);
    let i_exact = ab.codelet(c, vec![b]);

    // 11. error norm.
    let c = norm2("bt", "error.f:10-25");
    let b = al.bind_shared(&c, &[mdv(v_u)], &[md]);
    let i_err = ab.codelet(c, vec![b]);

    // 12. field initialisation.
    let c = fill("bt", "initialize.f:28-46", 1.0);
    let b = al.bind_shared(&c, &[mdv(v_u)], &[md]);
    let i_field = ab.codelet(c, vec![b]);

    // 13. lhs initialisation (small private flux-shaped loop).
    let c = flux("bt", "lhsinit.f:12-28", 0.2, 0.9);
    let b = al.bind_vecs(&c, sm, &[sm - 2]);
    let i_lhs = ab.codelet(c, vec![b]);

    // 14. binvcrhs: small dense block matvec (compute-leaning).
    let c = CodeletBuilder::new("solve_subs.f:118-160", "bt")
        .pattern("DP: small dense block mat x vec")
        .array("blk", Precision::F64)
        .array("v", Precision::F64)
        .param_loop("i")
        .param_loop("j")
        .update_acc("s", fgbs_isa::BinOp::Add, |b| {
            let row = b.load_expr(
                "blk",
                vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                AffineExpr::zero(),
            );
            row * b.load("v", &[0, 1])
        })
        .build();
    let side = class.mat_side() * 2;
    let b = al.bind(
        &c,
        &[(side * side, side as i64), (side, side as i64)],
        &[side, side],
    );
    let i_binv = ab.codelet(c, vec![b]);

    // Residue CF cannot outline (~8 % of time).
    let mut cc = flux("bt", "adi-glue", 0.1, 1.0);
    cc.extractable = false;
    let b = al.bind_shared(&cc, &[mdv(v_sq), mdv(v_u)], &[md - 2]);
    let i_hidden = ab.codelet(cc, vec![b]);

    // One time step: rhs assembly, three sweeps, solvers, update.
    ab.invoke(i_field, 0, 2 * rs)
        .invoke(i_init, 0, 4 * rs)
        .invoke(i_flux[0], 0, 4 * rs)
        .invoke(i_flux[1], 0, 4 * rs)
        .invoke(i_flux[2], 0, 4 * rs)
        .invoke(i_stencil, 0, 4 * rs)
        .invoke(i_exact, 0, 2 * rs)
        .invoke(i_xsolve, 0, 6 * rs)
        .invoke(i_ysolve, 0, 6 * rs)
        .invoke(i_zsolve, 0, 6 * rs)
        .invoke(i_binv, 0, 6 * rs)
        .invoke(i_lhs, 0, 8 * rs)
        .invoke(i_add, 0, 4 * rs)
        .invoke(i_err, 0, 2 * rs)
        .invoke(i_hidden, 0, 2 * rs)
        .rounds(class.rounds());

    ab.build()
}

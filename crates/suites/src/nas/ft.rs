//! FT — 3-D fast Fourier transform.
//!
//! 8 extractable codelets. `appft.f:45-47` is the second cluster-A twin
//! (compute-bound divide/exponential); the butterflies are non-unit-stride
//! scalar kernels; `fftz2` runs with two different problem sizes
//! (context-varying, hence ill-behaved under extraction).

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::{AffineExpr, Precision};

use super::{compute_cube, norm2, vmul, Alloc};
use crate::common::Class;
use fgbs_isa::CodeletBuilder;

fn butterfly(name: &str, stride: i64, off: i64) -> fgbs_isa::Codelet {
    CodeletBuilder::new(name, "ft")
        .pattern("MP: FFT butterfly (non-unit stride)")
        .array("d", Precision::F32)
        .array("w", Precision::F64)
        .param_loop("n")
        .store("d", &[stride], move |b| {
            b.load("d", &[stride]) * 0.8 - b.load("w", &[stride]) * 0.2
        })
        .store_at(
            "d",
            vec![AffineExpr::lit(stride)],
            AffineExpr::lit(off),
            move |b| {
                let lo = b.load_off("d", &[stride], off);
                let tw = b.load_off("w", &[stride], off);
                lo * 0.8 + tw * 0.2
            },
        )
        .build()
}

/// Build FT.
pub fn build(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("ft");
    let cs = class.cube_side();
    let md = class.med_vec();
    let sm = class.small_vec();

    // 1. The cluster-A compute cube twin.
    let c = compute_cube("ft", "appft.f:45-47", "appft.f", 45, 47);
    let lda = (cs * 8 + cs) as i64;
    let len = cs * lda as u64 + 8;
    let b = al.bind(&c, &[(len, lda), (len, lda), (len, lda)], &[cs, cs, cs]);
    let i_cube = ab.codelet(c, vec![b]);

    // 2-3. Stride-2 and stride-4 butterflies.
    let c = butterfly("cfftz.f:120-145", 2, 1);
    let b = al.bind_vecs(&c, md, &[md / 2 - 1]);
    let i_bf2 = ab.codelet(c, vec![b]);
    let c = butterfly("cfftz.f:150-175", 4, 2);
    let b = al.bind_vecs(&c, md, &[md / 4 - 1]);
    let i_bf4 = ab.codelet(c, vec![b]);

    // 4. Twiddle multiply.
    let c = vmul("ft", "fft3d.f:30-52");
    let b = al.bind_vecs(&c, md, &[md]);
    let i_tw = ab.codelet(c, vec![b]);

    // 5. evolve: u = u * exp-factor table (element-wise).
    let c = CodeletBuilder::new("evolve.f:12-30", "ft")
        .pattern("DP: evolve spectrum element wise")
        .array("u", Precision::F64)
        .array("ex", Precision::F64)
        .param_loop("n")
        .store("u", &[1], |b| b.load("u", &[1]) * b.load("ex", &[1]))
        .build();
    let b = al.bind_vecs(&c, md, &[md]);
    let i_ev = ab.codelet(c, vec![b]);

    // 6. checksum reduction.
    let c = norm2("ft", "checksum.f:8-20");
    let b = al.bind_vecs(&c, md, &[md]);
    let i_cs = ab.codelet(c, vec![b]);

    // 7. Plane transpose (stride-LDA loads, scalar).
    let c = CodeletBuilder::new("transpose.f:40-66", "ft")
        .pattern("DP: matrix transpose")
        .array("dst", Precision::F64)
        .array("src", Precision::F64)
        .param_loop("i")
        .param_loop("j")
        .store_at(
            "dst",
            vec![AffineExpr::lda(1), AffineExpr::lit(1)],
            AffineExpr::zero(),
            |b| {
                b.load_expr(
                    "src",
                    vec![AffineExpr::lit(1), AffineExpr::lda(1)],
                    AffineExpr::zero(),
                )
            },
        )
        .build();
    let side = class.mat_side() * 2;
    let b = al.bind(
        &c,
        &[(side * side, side as i64), (side * side, side as i64)],
        &[side, side],
    );
    let i_tr = ab.codelet(c, vec![b]);

    // 8. fftz2: the same butterfly at two problem sizes — a
    // context-varying codelet (extraction captures only the first size).
    let c = butterfly("fftz2.f:55-80", 2, 1);
    let b_big = al.bind_vecs(&c, md, &[md / 2 - 1]);
    let b_small = al.bind_vecs(&c, sm, &[sm / 2 - 1]);
    let i_fftz2 = ab.codelet(c, vec![b_big, b_small]);

    // Residue.
    let mut c = vmul("ft", "setup-glue");
    c.extractable = false;
    let b = al.bind_vecs(&c, md, &[md]);
    let i_hidden = ab.codelet(c, vec![b]);

    ab.invoke(i_cube, 0, 6 * rs)
        .invoke(i_tw, 0, 4 * rs)
        .invoke(i_bf2, 0, 4 * rs)
        .invoke(i_bf4, 0, 4 * rs)
        .invoke(i_fftz2, 0, 2 * rs)
        .invoke(i_fftz2, 1, 6 * rs)
        .invoke(i_tr, 0, 2 * rs)
        .invoke(i_ev, 0, 4 * rs)
        .invoke(i_cs, 0, 2 * rs)
        .invoke(i_hidden, 0, 2 * rs)
        .rounds(class.rounds());

    ab.build()
}

//! SP — scalar penta-diagonal solver.
//!
//! 14 extractable codelets sharing the solver state vectors.
//! `rhs.f:275-320` is the twin of BT's cluster-B stencil (the two cluster
//! together and share a representative); the directional solvers are
//! first-order recurrences (scalar sweeps); `txinvr` is compilation-
//! fragile in the opposite direction to BT's `x_solve` (scalar in-app,
//! vectorized standalone).

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::Fragility;

use super::{axpy, fill, flux, norm2, stencil5, sweep, vmul, Alloc};
use crate::common::Class;

/// Build SP.
pub fn build(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("sp");
    let ps = class.plane_side();
    let md = class.med_vec();
    let sm = class.small_vec();

    // Shared state vectors.
    let v_u = al.reserve(md, 8);
    let v_rhs = al.reserve(md, 8);
    let v_us = al.reserve(md, 8);
    let v_qs = al.reserve(md, 8);
    let v_aux = al.reserve(md, 8);
    let mdv = |base: u64| (base, md, md as i64);

    // 1. The cluster-B stencil twin (private planes).
    let c = stencil5("sp", "rhs.f:275-320", "rhs.f", 275, 320);
    let planes = (ps * ps, ps as i64);
    let b = al.bind(&c, &[planes, planes], &[ps - 2, ps - 2]);
    let i_stencil = ab.codelet(c, vec![b]);

    // 2. txinvr — fragile: an aliasing ambiguity in the application makes
    // the in-app loop scalar; the extracted wrapper vectorizes.
    let mut c = vmul("sp", "txinvr.f:15-45");
    c.fragility = Fragility::VectorWhenStandalone;
    let b = al.bind_shared(&c, &[mdv(v_u), mdv(v_us), mdv(v_aux)], &[md]);
    let i_txinvr = ab.codelet(c, vec![b]);

    // 3-4. ninvr / pinvr.
    let c = axpy("sp", "ninvr.f:12-34", 0.7);
    let b = al.bind_shared(&c, &[mdv(v_rhs), mdv(v_us)], &[md]);
    let i_ninvr = ab.codelet(c, vec![b]);
    let c = axpy("sp", "pinvr.f:12-34", 1.3);
    let b = al.bind_shared(&c, &[mdv(v_rhs), mdv(v_qs)], &[md]);
    let i_pinvr = ab.codelet(c, vec![b]);

    // 5-7. Directional scalar sweeps (first-order recurrences).
    let c = sweep("sp", "x_solve.f:27-84", 0.41);
    let b = al.bind_shared(&c, &[mdv(v_us), mdv(v_rhs)], &[md - 2]);
    let i_xsolve = ab.codelet(c, vec![b]);
    let c = sweep("sp", "y_solve.f:27-84", 0.43);
    let b = al.bind_shared(&c, &[mdv(v_qs), mdv(v_rhs)], &[md - 2]);
    let i_ysolve = ab.codelet(c, vec![b]);
    let c = sweep("sp", "z_solve.f:27-84", 0.45);
    let b = al.bind_shared(&c, &[mdv(v_aux), mdv(v_rhs)], &[md - 2]);
    let i_zsolve = ab.codelet(c, vec![b]);

    // 8. add.
    let c = axpy("sp", "add.f:12-25", 1.0);
    let b = al.bind_shared(&c, &[mdv(v_rhs), mdv(v_u)], &[md]);
    let i_add = ab.codelet(c, vec![b]);

    // 9-11. Directional fluxes.
    let mut i_flux = [0usize; 3];
    for (d, (name, c1, c2, out)) in [
        ("rhs.f:35-70x", 0.33, 1.05, v_rhs),
        ("rhs.f:80-115y", 0.28, 1.15, v_us),
        ("rhs.f:125-160z", 0.23, 1.25, v_qs),
    ]
    .iter()
    .enumerate()
    {
        let c = flux("sp", name, *c1, *c2);
        let b = al.bind_shared(&c, &[mdv(*out), mdv(v_u)], &[md - 2]);
        i_flux[d] = ab.codelet(c, vec![b]);
    }

    // 12. error norm.
    let c = norm2("sp", "error.f:10-25");
    let b = al.bind_shared(&c, &[mdv(v_u)], &[md]);
    let i_err = ab.codelet(c, vec![b]);

    // 13. rhs initialisation.
    let c = fill("sp", "rhs.f:20-28", 0.0);
    let b = al.bind_shared(&c, &[mdv(v_rhs)], &[md]);
    let i_init = ab.codelet(c, vec![b]);

    // 14. tzetar (small private vectors).
    let c = vmul("sp", "tzetar.f:14-42");
    let b = al.bind_vecs(&c, sm * 2, &[sm * 2]);
    let i_tzetar = ab.codelet(c, vec![b]);

    // Non-extractable residue.
    let mut c = flux("sp", "exact-solution-glue", 0.12, 0.95);
    c.extractable = false;
    let b = al.bind_shared(&c, &[mdv(v_aux), mdv(v_u)], &[md - 2]);
    let i_hidden = ab.codelet(c, vec![b]);

    ab.invoke(i_init, 0, 4 * rs)
        .invoke(i_flux[0], 0, 4 * rs)
        .invoke(i_flux[1], 0, 4 * rs)
        .invoke(i_flux[2], 0, 4 * rs)
        .invoke(i_stencil, 0, 4 * rs)
        .invoke(i_txinvr, 0, 4 * rs)
        .invoke(i_xsolve, 0, 4 * rs)
        .invoke(i_ninvr, 0, 4 * rs)
        .invoke(i_ysolve, 0, 4 * rs)
        .invoke(i_pinvr, 0, 4 * rs)
        .invoke(i_zsolve, 0, 4 * rs)
        .invoke(i_tzetar, 0, 8 * rs)
        .invoke(i_add, 0, 4 * rs)
        .invoke(i_err, 0, 2 * rs)
        .invoke(i_hidden, 0, 2 * rs)
        .rounds(class.rounds());

    ab.build()
}

//! IS — integer bucket sort.
//!
//! 6 extractable codelets, all integer: key generation, histogramming
//! (random scatter), prefix-sum recurrence, permutation gather,
//! bucket clearing and verification.

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::{AffineExpr, BinOp, Precision};

use super::Alloc;
use crate::common::Class;
use fgbs_isa::CodeletBuilder;

/// Build IS.
pub fn build(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("is");
    let keys = class.med_vec();
    let buckets = class.is_buckets();

    // 1. Key generation (integer LCG-ish stream).
    let c = CodeletBuilder::new("is.c:352-370", "is")
        .pattern("INT: key sequence generation")
        .array("k", Precision::I32)
        .array("seed", Precision::I32)
        .param_loop("n")
        .store("k", &[1], |b| b.load("seed", &[1]) * 5.0 + 3.0)
        .build();
    let b = al.bind_vecs(&c, keys, &[keys]);
    let i_gen = ab.codelet(c, vec![b]);

    // 2. Bucket clear.
    let c = CodeletBuilder::new("is.c:380-384", "is")
        .pattern("INT: bucket clear")
        .array("b", Precision::I32)
        .param_loop("n")
        .store("b", &[1], |bd| bd.constant(0.0))
        .build();
    let b = al.bind_vecs(&c, buckets, &[buckets]);
    let i_clear = ab.codelet(c, vec![b]);

    // 3. Histogram: random scatter increments (the sort's key count).
    let c = CodeletBuilder::new("is.c:388-394", "is")
        .pattern("INT: histogram random scatter")
        .array("bkt", Precision::I32)
        .array("k", Precision::I32)
        .param_loop("n")
        .store_random("bkt", u64::MAX, move |b| {
            b.load_random("bkt", u64::MAX) + 1.0
        })
        .build();
    // Clamp the span to the bucket table by binding length (`Random` spans
    // are clamped to the array length at execution time).
    let b = al.bind(
        &c,
        &[(buckets, buckets as i64), (keys, keys as i64)],
        &[keys],
    );
    let i_hist = ab.codelet(c, vec![b]);

    // 4. Prefix sum over buckets (integer recurrence).
    let c = CodeletBuilder::new("is.c:398-402", "is")
        .pattern("INT: prefix sum recurrence")
        .array("bkt", Precision::I32)
        .param_loop("n")
        .store_at("bkt", vec![AffineExpr::lit(1)], AffineExpr::lit(1), |b| {
            b.load_off("bkt", &[1], 0) + b.load_off("bkt", &[1], 1)
        })
        .build();
    let b = al.bind_vecs(&c, buckets, &[buckets - 1]);
    let i_prefix = ab.codelet(c, vec![b]);

    // 5. Permutation gather into sorted order.
    let c = CodeletBuilder::new("is.c:410-416", "is")
        .pattern("INT: permutation gather")
        .array("out", Precision::I32)
        .array("k", Precision::I32)
        .param_loop("n")
        .store("out", &[1], move |b| b.load_random("k", u64::MAX) + 0.0)
        .build();
    let b = al.bind(
        &c,
        &[(keys, keys as i64), (keys, keys as i64)],
        &[keys],
    );
    let i_perm = ab.codelet(c, vec![b]);

    // 6. Verification reduction.
    let c = CodeletBuilder::new("is.c:430-441", "is")
        .pattern("INT: ordering verification reduction")
        .array("out", Precision::I32)
        .param_loop("n")
        .update_acc("bad", BinOp::Add, |b| b.load("out", &[1]))
        .build();
    let b = al.bind_vecs(&c, keys, &[keys]);
    let i_ver = ab.codelet(c, vec![b]);

    // Residue.
    let c = CodeletBuilder::new("alloc-glue", "is")
        .pattern("INT: buffer touch")
        .array("t", Precision::I32)
        .param_loop("n")
        .store("t", &[1], |b| b.constant(1.0))
        .build();
    let mut cc = c;
    cc.extractable = false;
    let b = al.bind_vecs(&cc, keys / 4, &[keys / 4]);
    let i_hidden = ab.codelet(cc, vec![b]);

    ab.invoke(i_gen, 0, 2 * rs)
        .invoke(i_clear, 0, 2 * rs)
        .invoke(i_hist, 0, 4 * rs)
        .invoke(i_prefix, 0, 4 * rs)
        .invoke(i_perm, 0, 4 * rs)
        .invoke(i_ver, 0, 2 * rs)
        .invoke(i_hidden, 0, rs)
        .rounds(class.rounds() * 2);

    ab.build()
}

//! CG — conjugate gradient with a sparse, irregularly-indexed matvec.
//!
//! 6 extractable codelets. `cg.f:556-564` — the sparse matrix × vector
//! product — dominates CG's execution time. Its working set (~56 KB,
//! dominated by the randomly-indexed vector `p`) is larger than the
//! scaled reference Nehalem's 32 KB L2 (so in-app and standalone runs
//! both serve `p` from L3, and the unpipelined divide in the body lets
//! the out-of-order core hide that latency entirely: the codelet is
//! *well-behaved on the reference*) but smaller than Atom's 64 KB L2.
//! On Atom the standalone microbenchmark keeps `p` warm across
//! invocations, while in-app invocations are interleaved with the
//! vector-update phase, whose shared state streams ~200 KB through
//! Atom's L2 and evicts `p` — the paper's CG anomaly: "the
//! microbenchmark is not preserving the cache state", observed only on
//! Atom, where the in-order pipeline exposes every miss.

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::{BinOp, Precision};

use super::{axpy, fill, norm2, Alloc};
use crate::common::Class;
use fgbs_isa::CodeletBuilder;

/// Build CG.
pub fn build(class: Class) -> Application {
    let mut al = Alloc::new();
    let mut ab = ApplicationBuilder::new("cg");
    let rows = class.cg_rows();
    let span = class.cg_span();
    let big = class.cg_vec();

    // Shared vectors of the CG iteration (the in-app cache evictors).
    let v_x = al.reserve(big, 8);
    let v_y = al.reserve(big, 8);
    let v_z = al.reserve(big, 8);
    let bigv = |base: u64| (base, big, big as i64);

    // 1. The dominant sparse matvec: a few passes over a compact row
    //    stream with a gather from p and an unpipelined divide. The first
    //    pass touches p cold; later passes run warm — so per-invocation
    //    cost is sensitive to whether p survived since the last
    //    invocation.
    let passes = 3u64;
    let c = CodeletBuilder::new("cg.f:556-564", "cg")
        .pattern("DP: sparse matrix x vector product (gather)")
        .array("a", Precision::F64)
        .array("p", Precision::F64)
        .param_loop("pass")
        .param_loop("row")
        .update_acc("s", BinOp::Add, move |b| {
            let aij = b.load("a", &[0, 1]);
            let pj = b.load_random("p", span);
            let aij2 = b.load("a", &[0, 1]);
            aij * pj / (aij2 + 3.0)
        })
        .build();
    let b = al.bind(
        &c,
        &[(rows, rows as i64), (span, span as i64)],
        &[passes, rows],
    );
    let i_matvec = ab.codelet(c, vec![b]);

    // 2-5. The vector phase over the shared state.
    let c = axpy("cg", "cg.f:598-602", 0.8);
    let b = al.bind_shared(&c, &[bigv(v_x), bigv(v_y)], &[big]);
    let i_axpy_z = ab.codelet(c, vec![b]);

    let c = axpy("cg", "cg.f:621-625", -0.6);
    let b = al.bind_shared(&c, &[bigv(v_y), bigv(v_z)], &[big]);
    let i_axpy_r = ab.codelet(c, vec![b]);

    let c = norm2("cg", "cg.f:638-641");
    let b = al.bind_shared(&c, &[bigv(v_z)], &[big]);
    let i_rho = ab.codelet(c, vec![b]);

    let c = CodeletBuilder::new("cg.f:650-654", "cg")
        .pattern("DP: dot product")
        .array("p", Precision::F64)
        .array("q", Precision::F64)
        .param_loop("n")
        .update_acc("d", BinOp::Add, |b| b.load("p", &[1]) * b.load("q", &[1]))
        .build();
    let b = al.bind_shared(&c, &[bigv(v_x), bigv(v_z)], &[big]);
    let i_dot = ab.codelet(c, vec![b]);

    // 6. p update.
    let c = axpy("cg", "cg.f:663-667", 0.9);
    let b = al.bind_shared(&c, &[bigv(v_z), bigv(v_x)], &[big]);
    let i_scale = ab.codelet(c, vec![b]);

    // Residue.
    let mut c = fill("cg", "makea-glue", 0.0);
    c.extractable = false;
    let b = al.bind_shared(&c, &[bigv(v_y)], &[big]);
    let i_hidden = ab.codelet(c, vec![b]);

    // One CG iteration: matvec, then the vector phase (the evictors).
    ab.invoke(i_matvec, 0, 1)
        .invoke(i_dot, 0, 1)
        .invoke(i_axpy_z, 0, 1)
        .invoke(i_axpy_r, 0, 1)
        .invoke(i_rho, 0, 1)
        .invoke(i_scale, 0, 1)
        .invoke(i_hidden, 0, 1)
        .rounds(class.rounds() * 6);

    ab.build()
}

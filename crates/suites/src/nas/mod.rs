//! The seven NAS-like applications (BT, CG, FT, IS, LU, MG, SP).
//!
//! Each module rebuilds one solver's codelet population and invocation
//! schedule. The decomposition yields **67 extractable codelets** across
//! the suite, plus non-extractable residue loops (CF cannot outline
//! everything; detected codelets cover ~92 % of time, §3.1). Key paper
//! artefacts are wired in:
//!
//! * `BT/rhs.f:266-311` and `SP/rhs.f:275-320` — the memory-bound
//!   three-point stencils on five planes of the §4.4 case study
//!   (cluster B).
//! * `LU/erhs.f:49-57` and `FT/appft.f:45-47` — the triple-nested
//!   divide+exponential compute-bound twins (cluster A).
//! * `CG/cg.f:556-564` — the sparse matvec responsible for 95 % of CG's
//!   time, well-behaved on the reference but cache-state-sensitive on
//!   Atom.
//! * MG codelets run on several grid levels (multiple invocation
//!   contexts), making them ill-behaved under extraction — which is why
//!   the paper's per-application subsetting cannot predict MG.
//! * A few codelets are compilation-fragile (vectorize differently inside
//!   and outside the application), the second source of ill-behaviour.

mod bt;
mod cg;
mod ft;
mod is;
mod lu;
mod mg;
mod sp;

use fgbs_extract::Application;
use fgbs_isa::{AffineExpr, BinOp, Codelet, CodeletBuilder, ExprHandle, Precision};

use crate::common::Class;

/// The NAS application names, suite order.
pub const NAS_APPS: [&str; 7] = ["bt", "cg", "ft", "is", "lu", "mg", "sp"];

/// Build the full NAS-like suite.
pub fn nas_suite(class: Class) -> Vec<Application> {
    vec![
        bt::build(class),
        cg::build(class),
        ft::build(class),
        is::build(class),
        lu::build(class),
        mg::build(class),
        sp::build(class),
    ]
}

/// Build one NAS application by name (`bt`, `cg`, `ft`, `is`, `lu`, `mg`,
/// `sp`).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn nas_app(name: &str, class: Class) -> Application {
    match name {
        "bt" => bt::build(class),
        "cg" => cg::build(class),
        "ft" => ft::build(class),
        "is" => is::build(class),
        "lu" => lu::build(class),
        "mg" => mg::build(class),
        "sp" => sp::build(class),
        other => panic!("unknown NAS application `{other}`"),
    }
}

// ---------------------------------------------------------------------
// Shared kernel shapes.
// ---------------------------------------------------------------------

/// Three-point stencil over five planes (the cluster-B shape): one output
/// plane computed from five neighbouring points of a solution plane.
/// Arrays: out, u — `side × side` f64 each; the pair is sized to fit the
/// (scaled) Nehalem and Sandy Bridge last-level caches but not Core 2's
/// L2 (§4.4's memory-bound cluster B).
pub(crate) fn stencil5(app: &str, name: &str, file: &str, l0: u32, l1: u32) -> Codelet {
    CodeletBuilder::new(name, app)
        .source(file, l0, l1)
        .pattern("DP: three-point stencil on five planes")
        .array("out", Precision::F64)
        .array("u", Precision::F64)
        .param_loop("i")
        .param_loop("j")
        .store_at(
            "out",
            vec![AffineExpr::lda(1), AffineExpr::lit(1)],
            AffineExpr::new(1, 1),
            |b| {
                let s = vec![AffineExpr::lda(1), AffineExpr::lit(1)];
                let w = b.load_expr("u", s.clone(), AffineExpr::new(0, 1));
                let c = b.load_expr("u", s.clone(), AffineExpr::new(1, 1));
                let e = b.load_expr("u", s.clone(), AffineExpr::new(2, 1));
                let n = b.load_expr("u", s.clone(), AffineExpr::new(1, 2));
                let so = b.load_expr("u", s, AffineExpr::new(1, 0));
                (w - c * 2.0 + e) * 0.8 + (n - so) * 0.15
            },
        )
        .build()
}

/// Triple-nested divide+exponential cube (the cluster-A shape).
pub(crate) fn compute_cube(app: &str, name: &str, file: &str, l0: u32, l1: u32) -> Codelet {
    CodeletBuilder::new(name, app)
        .source(file, l0, l1)
        .pattern("DP: triple-nested high-latency divide/exponential")
        .array("q", Precision::F64)
        .array("u", Precision::F64)
        .array("v", Precision::F64)
        .param_loop("i")
        .param_loop("j")
        .param_loop("k")
        .store_at(
            "q",
            vec![AffineExpr::lda(1), AffineExpr::lit(8), AffineExpr::lit(1)],
            AffineExpr::zero(),
            |b| {
                let s = vec![AffineExpr::lda(1), AffineExpr::lit(8), AffineExpr::lit(1)];
                let x = b.load_expr("u", s.clone(), AffineExpr::zero());
                let y = b.load_expr("v", s, AffineExpr::zero());
                let (x2, y2) = (x.clone(), y.clone());
                (x / y).exp() * 0.01 + x2 / (y2 + 3.0)
            },
        )
        .build()
}

/// `y[i] = a*x[i] + y[i]` (vectorizable stream).
pub(crate) fn axpy(app: &str, name: &str, a: f64) -> Codelet {
    CodeletBuilder::new(name, app)
        .pattern("DP: vector triad")
        .array("x", Precision::F64)
        .array("y", Precision::F64)
        .param_loop("n")
        .store("y", &[1], move |b| b.load("x", &[1]) * a + b.load("y", &[1]))
        .build()
}

/// Sum-of-squares reduction (vectorizable).
pub(crate) fn norm2(app: &str, name: &str) -> Codelet {
    CodeletBuilder::new(name, app)
        .pattern("DP: sum of squares reduction")
        .array("x", Precision::F64)
        .param_loop("n")
        .update_acc("s", BinOp::Add, |b| {
            let v = b.load("x", &[1]);
            let w = b.load("x", &[1]);
            v * w
        })
        .build()
}

/// Set a vector to a constant (store-only stream).
pub(crate) fn fill(app: &str, name: &str, v: f64) -> Codelet {
    CodeletBuilder::new(name, app)
        .pattern("DP: set to constant")
        .array("x", Precision::F64)
        .param_loop("n")
        .store("x", &[1], move |b| b.constant(v))
        .build()
}

/// Element-wise multiply of two streams into a third.
pub(crate) fn vmul(app: &str, name: &str) -> Codelet {
    CodeletBuilder::new(name, app)
        .pattern("DP: vector multiply element wise")
        .array("a", Precision::F64)
        .array("b", Precision::F64)
        .array("c", Precision::F64)
        .param_loop("n")
        .store("c", &[1], |bd| bd.load("a", &[1]) * bd.load("b", &[1]))
        .build()
}

/// First-order recurrence sweep (forward substitution shape).
pub(crate) fn sweep(app: &str, name: &str, coeff: f64) -> Codelet {
    CodeletBuilder::new(name, app)
        .pattern("DP: first order recurrence sweep")
        .array("v", Precision::F64)
        .array("r", Precision::F64)
        .param_loop("n")
        .store_at("v", vec![AffineExpr::lit(1)], AffineExpr::lit(1), move |b| {
            let prev = b.load("v", &[1]);
            b.load_off("r", &[1], 1) - prev * coeff
        })
        .build()
}

/// A generic flux-difference kernel: out[i] = (u[i+1]-u[i-1])*c1 +
/// u[i]*c2 (vectorizable, reads one array thrice).
pub(crate) fn flux(app: &str, name: &str, c1: f64, c2: f64) -> Codelet {
    CodeletBuilder::new(name, app)
        .pattern("DP: flux difference")
        .array("out", Precision::F64)
        .array("u", Precision::F64)
        .param_loop("n")
        .store_at("out", vec![AffineExpr::lit(1)], AffineExpr::lit(1), move |b| {
            let e = b.load_off("u", &[1], 2);
            let w = b.load_off("u", &[1], 0);
            let c = b.load_off("u", &[1], 1);
            (e - w) * c1 + c * c2
        })
        .build()
}

/// Helper re-exported to app modules.
pub(crate) use crate::common::Alloc;

/// Convenience for `ExprHandle` chains that need a no-op (documentation of
/// intent in kernels built from closures).
#[allow(dead_code)]
pub(crate) fn id(e: ExprHandle) -> ExprHandle {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbs_isa::{carried_dependence, compile, CompileMode, Fragility, TargetSpec, VOp};

    fn find<'a>(app: &'a Application, needle: &str) -> &'a Codelet {
        app.codelets
            .iter()
            .find(|c| c.name.contains(needle))
            .unwrap_or_else(|| panic!("{} not found in {}", needle, app.name))
    }

    #[test]
    fn per_app_codelet_counts() {
        let counts: Vec<(String, usize)> = nas_suite(Class::Test)
            .iter()
            .map(|a| (a.name.clone(), a.extractable().len()))
            .collect();
        let expect = [
            ("bt", 14),
            ("cg", 6),
            ("ft", 8),
            ("is", 6),
            ("lu", 11),
            ("mg", 8),
            ("sp", 14),
        ];
        for ((name, n), (en, ec)) in counts.iter().zip(expect) {
            assert_eq!(name, en);
            assert_eq!(*n, ec, "{name} codelet count");
        }
    }

    #[test]
    fn cluster_twins_share_their_shape() {
        let suite = nas_suite(Class::Test);
        let bt = &suite[0];
        let sp = &suite[6];
        let a = find(bt, "rhs.f:266-311");
        let b = find(sp, "rhs.f:275-320");
        // The stencil twins have identical bodies up to naming.
        assert_eq!(a.nest.body.len(), b.nest.body.len());
        assert_eq!(a.stride_summary(), b.stride_summary());

        let lu = &suite[4];
        let ft = &suite[2];
        let c = find(lu, "erhs.f:49-57");
        let d = find(ft, "appft.f:45-47");
        assert_eq!(c.nest.depth(), 3);
        assert_eq!(d.nest.depth(), 3);
        // Both compute cubes contain divides and transcendental calls.
        for cube in [c, d] {
            let k = compile(cube, &TargetSpec::sse128(), CompileMode::InApp);
            assert!(k.count_op(VOp::FDiv) > 0.0, "{}", cube.name);
            assert!(k.count_op(VOp::FCall) > 0.0, "{}", cube.name);
        }
    }

    #[test]
    fn fragile_codelets_are_marked() {
        let suite = nas_suite(Class::Test);
        let cases = [
            (0usize, "x_solve", Fragility::ScalarWhenStandalone),
            (4, "jacld", Fragility::ScalarWhenStandalone),
            (6, "txinvr", Fragility::VectorWhenStandalone),
        ];
        for (app, name, frag) in cases {
            assert_eq!(find(&suite[app], name).fragility, frag, "{name}");
        }
        // And everything else is robust.
        let fragile_total: usize = suite
            .iter()
            .flat_map(|a| &a.codelets)
            .filter(|c| c.fragility != Fragility::Robust)
            .count();
        assert_eq!(fragile_total, 3);
    }

    #[test]
    fn sweeps_are_recurrences() {
        let suite = nas_suite(Class::Test);
        for (app, name) in [(6usize, "x_solve"), (6, "y_solve"), (6, "z_solve"), (4, "blts"), (4, "buts")] {
            let c = find(&suite[app], name);
            assert!(carried_dependence(c), "{} must carry a dependence", c.name);
        }
    }

    #[test]
    fn mg_codelets_are_context_varying() {
        let suite = nas_suite(Class::Test);
        let mg = &suite[5];
        for i in mg.extractable() {
            assert!(
                mg.context_count(i) >= 2,
                "{} must run on several grid levels",
                mg.codelets[i].name
            );
        }
        // The other apps' codelets are single-context, except FT's fftz2.
        let ft = &suite[2];
        let varying: Vec<&str> = ft
            .extractable()
            .into_iter()
            .filter(|&i| ft.context_count(i) >= 2)
            .map(|i| ft.codelets[i].name.as_str())
            .collect();
        assert_eq!(varying, vec!["fftz2.f:55-80"]);
    }

    #[test]
    fn cg_matvec_gathers_and_divides() {
        let suite = nas_suite(Class::Test);
        let cg = &suite[1];
        let mv = find(cg, "cg.f:556-564");
        let k = compile(mv, &TargetSpec::sse128(), CompileMode::InApp);
        assert!(k.count_op(VOp::FDiv) > 0.0, "divide hides reference L3 latency");
        assert!(
            mv.nest.accesses().iter().any(|(a, _)| a.stride_class(2) == "rand"),
            "the gather from p is data-dependent"
        );
        // CG's matvec dominates the schedule time-wise: it runs every round.
        assert!(cg.invocations_of(0) >= cg.rounds);
    }

    #[test]
    fn is_codelets_are_integer() {
        let suite = nas_suite(Class::Test);
        for i in suite[3].extractable() {
            assert_eq!(
                suite[3].codelets[i].precision_label(),
                "INT",
                "{}",
                suite[3].codelets[i].name
            );
        }
    }

    #[test]
    fn shared_state_vectors_overlap_within_apps() {
        // BT's flux kernels read the same shared `u` vector.
        let suite = nas_suite(Class::Test);
        let bt = &suite[0];
        let fx = bt
            .codelets
            .iter()
            .position(|c| c.name == "rhs.f:22-57x")
            .unwrap();
        let fy = bt
            .codelets
            .iter()
            .position(|c| c.name == "rhs.f:62-97y")
            .unwrap();
        let ux = bt.contexts[fx][0].arrays[1].base;
        let uy = bt.contexts[fy][0].arrays[1].base;
        assert_eq!(ux, uy, "both fluxes stream the same shared u");
        // But their outputs are distinct regions.
        assert_ne!(
            bt.contexts[fx][0].arrays[0].base,
            bt.contexts[fy][0].arrays[0].base
        );
    }

    #[test]
    fn every_nas_codelet_interprets_in_bounds() {
        for app in nas_suite(Class::Test) {
            for (ci, c) in app.codelets.iter().enumerate() {
                for (bi, b) in app.contexts[ci].iter().enumerate() {
                    let mut mem = fgbs_isa::Memory::for_binding(c, b);
                    fgbs_isa::interpret(c, b, &mut mem).unwrap_or_else(|e| {
                        panic!("{}/{} ctx {}: {}", app.name, c.name, bi, e)
                    });
                }
            }
        }
    }

    #[test]
    fn nas_app_lookup_matches_suite() {
        for name in NAS_APPS {
            let a = nas_app(name, Class::Test);
            assert_eq!(a.name, name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown NAS application")]
    fn unknown_app_panics() {
        let _ = nas_app("ep", Class::Test);
    }
}

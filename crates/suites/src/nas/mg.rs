//! MG — multigrid V-cycle.
//!
//! 8 extractable codelets, every one of them invoked on several grid
//! levels with different datasets. Extraction captures only the finest-
//! level (first) context, so all MG codelets are *ill-behaved* — exactly
//! why the paper's per-application subsetting cannot predict MG (§4.4)
//! while cross-application subsetting predicts it through other apps'
//! representatives.

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::{AffineExpr, Binding, Codelet, Precision};

use super::{norm2, Alloc};
use crate::common::Class;
use fgbs_isa::CodeletBuilder;

/// Grid sides of the three V-cycle levels, finest first.
fn levels(class: Class) -> [u64; 3] {
    let s = class.mg_side();
    [s, s / 2, s / 4]
}

fn stencil_apply(name: &str, coef: [f64; 3]) -> Codelet {
    CodeletBuilder::new(name, "mg")
        .pattern("DP: 5-point grid operator")
        .array("out", Precision::F64)
        .array("u", Precision::F64)
        .param_loop("i")
        .param_loop("j")
        .store_at(
            "out",
            vec![AffineExpr::lda(1), AffineExpr::lit(1)],
            AffineExpr::new(1, 1),
            move |b| {
                let s = vec![AffineExpr::lda(1), AffineExpr::lit(1)];
                let c = b.load_expr("u", s.clone(), AffineExpr::new(1, 1));
                let e = b.load_expr("u", s.clone(), AffineExpr::new(2, 1));
                let w = b.load_expr("u", s.clone(), AffineExpr::new(0, 1));
                let n = b.load_expr("u", s.clone(), AffineExpr::new(1, 2));
                let so = b.load_expr("u", s, AffineExpr::new(1, 0));
                c * coef[0] + (e + w) * coef[1] + (n + so) * coef[2]
            },
        )
        .build()
}

fn grid_contexts(al: &mut Alloc, c: &Codelet, class: Class) -> Vec<Binding> {
    levels(class)
        .iter()
        .map(|&side| {
            let arrays: Vec<(u64, i64)> = c
                .arrays
                .iter()
                .map(|_| (side * side, side as i64))
                .collect();
            let params: Vec<u64> = (0..c.n_params).map(|_| side - 2).collect();
            al.bind(c, &arrays, &params)
        })
        .collect()
}

fn vec_contexts(al: &mut Alloc, c: &Codelet, class: Class) -> Vec<Binding> {
    levels(class)
        .iter()
        .map(|&side| {
            let len = side * side;
            let arrays: Vec<(u64, i64)> = c.arrays.iter().map(|_| (len, len as i64)).collect();
            let params: Vec<u64> = (0..c.n_params).map(|_| len).collect();
            al.bind(c, &arrays, &params)
        })
        .collect()
}

/// Build MG.
pub fn build(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("mg");

    // 1. psinv — smoother.
    let c = stencil_apply("psinv.f:34-60", [0.5, 0.25, 0.25]);
    let ctx = grid_contexts(&mut al, &c, class);
    let i_psinv = ab.codelet(c, ctx);

    // 2. resid — residual.
    let c = stencil_apply("resid.f:34-60", [-2.0, 1.0, 1.0]);
    let ctx = grid_contexts(&mut al, &c, class);
    let i_resid = ab.codelet(c, ctx);

    // 3. rprj3 — fine-to-coarse restriction (stride-2 reads).
    let c = CodeletBuilder::new("rprj3.f:30-56", "mg")
        .pattern("DP: fine-to-coarse restriction")
        .array("coarse", Precision::F64)
        .array("fine", Precision::F64)
        .param_loop("i")
        .param_loop("j")
        .store_at(
            "coarse",
            vec![AffineExpr::lda(1), AffineExpr::lit(1)],
            AffineExpr::zero(),
            |b| {
                let s = vec![AffineExpr::lda(2), AffineExpr::lit(2)];
                let c0 = b.load_expr("fine", s.clone(), AffineExpr::new(1, 1));
                let c1 = b.load_expr("fine", s.clone(), AffineExpr::new(2, 1));
                let c2 = b.load_expr("fine", s, AffineExpr::new(1, 2));
                c0 * 0.5 + (c1 + c2) * 0.25
            },
        )
        .build();
    // Contexts pair coarse level l+1 with fine level l.
    let lv = levels(class);
    let ctx: Vec<Binding> = (0..2)
        .map(|l| {
            let (cs, fs) = (lv[l + 1], lv[l]);
            al.bind(
                &c,
                &[(cs * cs, cs as i64), (fs * fs, fs as i64)],
                &[cs - 2, cs - 2],
            )
        })
        .collect();
    let i_rprj = ab.codelet(c, ctx);

    // 4. interp — coarse-to-fine prolongation (stride-2 writes).
    let c = CodeletBuilder::new("interp.f:30-56", "mg")
        .pattern("DP: coarse-to-fine prolongation")
        .array("fine", Precision::F64)
        .array("coarse", Precision::F64)
        .param_loop("i")
        .param_loop("j")
        .store_at(
            "fine",
            vec![AffineExpr::lda(2), AffineExpr::lit(2)],
            AffineExpr::new(1, 1),
            |b| {
                let s = vec![AffineExpr::lda(1), AffineExpr::lit(1)];
                let c0 = b.load_expr("coarse", s.clone(), AffineExpr::zero());
                let c1 = b.load_expr("coarse", s, AffineExpr::new(1, 0));
                c0 * 0.75 + c1 * 0.25
            },
        )
        .build();
    let ctx: Vec<Binding> = (0..2)
        .map(|l| {
            let (fs, cs) = (lv[l], lv[l + 1]);
            al.bind(
                &c,
                &[(fs * fs, fs as i64), (cs * cs, cs as i64)],
                &[cs - 2, cs - 2],
            )
        })
        .collect();
    let i_interp = ab.codelet(c, ctx);

    // 5. norm2u3 — residual norm, per level.
    let c = norm2("mg", "norm2u3.f:10-28");
    let ctx = vec_contexts(&mut al, &c, class);
    let i_norm = ab.codelet(c, ctx);

    // 6. zero3 — grid clear, per level.
    let c = CodeletBuilder::new("zero3.f:8-18", "mg")
        .pattern("DP: grid clear")
        .array("z", Precision::F64)
        .param_loop("n")
        .store("z", &[1], |b| b.constant(0.0))
        .build();
    let ctx = vec_contexts(&mut al, &c, class);
    let i_zero = ab.codelet(c, ctx);

    // 7. comm3 — boundary copy, per level.
    let c = CodeletBuilder::new("comm3.f:12-30", "mg")
        .pattern("DP: boundary exchange copy")
        .array("dst", Precision::F64)
        .array("src", Precision::F64)
        .param_loop("n")
        .store("dst", &[1], |b| b.load("src", &[1]))
        .build();
    let ctx = vec_contexts(&mut al, &c, class);
    let i_comm = ab.codelet(c, ctx);

    // 8. A second smoother sweep with different weights.
    let c = stencil_apply("psinv.f:70-96", [0.6, 0.2, 0.2]);
    let ctx = grid_contexts(&mut al, &c, class);
    let i_psinv2 = ab.codelet(c, ctx);

    // Residue.
    let c = CodeletBuilder::new("setup-glue", "mg")
        .pattern("DP: grid setup")
        .array("z", Precision::F64)
        .param_loop("n")
        .store("z", &[1], |b| b.constant(0.5))
        .build();
    let mut cc = c;
    cc.extractable = false;
    let len = lv[0] * lv[0] / 2;
    let b = al.bind_vecs(&cc, len, &[len]);
    let i_hidden = ab.codelet(cc, vec![b]);

    // One V-cycle: sweep down the levels, then back up.
    ab.invoke(i_zero, 0, rs)
        .invoke(i_resid, 0, 2 * rs)
        .invoke(i_rprj, 0, rs)
        .invoke(i_resid, 1, 2 * rs)
        .invoke(i_rprj, 1, 3 * rs)
        .invoke(i_resid, 2, 2 * rs)
        .invoke(i_psinv, 2, 2 * rs)
        .invoke(i_interp, 1, rs)
        .invoke(i_psinv, 1, 2 * rs)
        .invoke(i_psinv2, 1, rs)
        .invoke(i_interp, 0, rs)
        .invoke(i_psinv, 0, 2 * rs)
        .invoke(i_psinv2, 0, rs)
        .invoke(i_comm, 0, 2 * rs)
        .invoke(i_comm, 1, 2 * rs)
        .invoke(i_comm, 2, 2 * rs)
        .invoke(i_zero, 1, rs)
        .invoke(i_zero, 2, rs)
        .invoke(i_norm, 0, rs)
        .invoke(i_norm, 1, rs)
        .invoke(i_norm, 2, rs)
        .invoke(i_hidden, 0, rs)
        .rounds(class.rounds() * 2);

    ab.build()
}

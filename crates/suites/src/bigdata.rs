//! Big-data-like suite: pointer-chasing, hash-join and scan-heavy
//! kernels with **low floating-point intensity** — the memory-irregular
//! regime *Characterizing and Subsetting Big Data Workloads* shows a
//! subsetting methodology must be validated on, and one the NR/NAS-like
//! suites never enter. Three applications:
//!
//! * `chase` — linked-structure traversal: node-table generation, a
//!   DRAM-random pointer walk, and a frontier scatter.
//! * `join`  — hash join: build-side scatter into a hash table, a probe
//!   gather reduction, and a partition prefix sum.
//! * `scan`  — columnar scan: a selection reduction, a two-column
//!   projection, and a strided column extract out of a wide row.
//!
//! All arrays are integer precisions (`I32`/`I64`); the only arithmetic
//! is address-like adds/muls, so the FP-intensity features sit at the
//! bottom of the feature space, stressing the clustering in a regime
//! where the NR/NAS codelets offer no nearby neighbours. The codelets of
//! this suite are exported as the first first-party snippet pack (see
//! `fgbs-snippet`).

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::{AffineExpr, BinOp, CodeletBuilder, Precision};

use super::Alloc;
use crate::common::Class;

/// The applications of the big-data suite, in build order.
pub const BIGDATA_APPS: [&str; 3] = ["chase", "join", "scan"];

/// Build the full big-data suite at `class`.
pub fn bigdata_suite(class: Class) -> Vec<Application> {
    BIGDATA_APPS
        .iter()
        .map(|name| bigdata_app(name, class))
        .collect()
}

/// Build one application by name (panics on an unknown name — the CLI
/// validates suite names before reaching this).
pub fn bigdata_app(name: &str, class: Class) -> Application {
    match name {
        "chase" => build_chase(class),
        "join" => build_join(class),
        "scan" => build_scan(class),
        other => panic!("unknown bigdata application `{other}`"),
    }
}

/// `chase` — pointer-chasing graph traversal.
fn build_chase(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("chase");
    let nodes = class.big_vec();
    let frontier = class.med_vec();

    // 1. Node-table generation (integer successor stream).
    let c = CodeletBuilder::new("chase.c:31-42", "chase")
        .pattern("INT: successor table generation")
        .array("next", Precision::I64)
        .array("seed", Precision::I64)
        .param_loop("n")
        .store("next", &[1], |b| b.load("seed", &[1]) * 13.0 + 7.0)
        .build();
    let b = al.bind_vecs(&c, nodes, &[nodes]);
    let i_gen = ab.codelet(c, vec![b]);

    // 2. Random pointer walk: every hop is a data-dependent load with no
    // spatial locality — the DRAM-latency-bound heart of the suite.
    let c = CodeletBuilder::new("chase.c:55-68", "chase")
        .pattern("INT: random pointer walk reduction")
        .array("next", Precision::I64)
        .param_loop("n")
        .update_acc("hop", BinOp::Add, |b| b.load_random("next", u64::MAX))
        .build();
    let b = al.bind_vecs(&c, nodes, &[nodes]);
    let i_walk = ab.codelet(c, vec![b]);

    // 3. Frontier scatter (visit-count histogram over a smaller table).
    let c = CodeletBuilder::new("chase.c:74-88", "chase")
        .pattern("INT: frontier scatter increments")
        .array("visit", Precision::I32)
        .param_loop("n")
        .store_random("visit", u64::MAX, |b| b.load_random("visit", u64::MAX) + 1.0)
        .build();
    let b = al.bind_vecs(&c, frontier, &[nodes]);
    let i_front = ab.codelet(c, vec![b]);

    // Residue: traversal bookkeeping CF cannot outline.
    let c = CodeletBuilder::new("queue-glue", "chase")
        .pattern("INT: work-queue touch")
        .array("q", Precision::I32)
        .param_loop("n")
        .store("q", &[1], |b| b.constant(1.0))
        .build();
    let mut cc = c;
    cc.extractable = false;
    let b = al.bind_vecs(&cc, frontier / 4, &[frontier / 4]);
    let i_hidden = ab.codelet(cc, vec![b]);

    ab.invoke(i_gen, 0, rs)
        .invoke(i_walk, 0, 4 * rs)
        .invoke(i_front, 0, 2 * rs)
        .invoke(i_hidden, 0, rs)
        .rounds(class.rounds() * 2);
    ab.build()
}

/// `join` — hash join over integer keys.
fn build_join(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("join");
    let table = class.is_buckets();
    let keys = class.med_vec();

    // 1. Build side: scatter build keys into the hash table.
    let c = CodeletBuilder::new("join.c:102-118", "join")
        .pattern("INT: hash-table build scatter")
        .array("ht", Precision::I64)
        .array("build", Precision::I64)
        .param_loop("n")
        .store_random("ht", u64::MAX, |b| b.load("build", &[1]))
        .build();
    let b = al.bind(&c, &[(table, table as i64), (keys, keys as i64)], &[keys]);
    let i_build = ab.codelet(c, vec![b]);

    // 2. Probe side: gather matches, accumulate the join cardinality.
    let c = CodeletBuilder::new("join.c:131-150", "join")
        .pattern("INT: hash-table probe gather")
        .array("ht", Precision::I64)
        .array("probe", Precision::I64)
        .param_loop("n")
        .update_acc("matches", BinOp::Add, |b| {
            b.load_random("ht", u64::MAX) * b.load("probe", &[1])
        })
        .build();
    let b = al.bind(&c, &[(table, table as i64), (keys, keys as i64)], &[keys]);
    let i_probe = ab.codelet(c, vec![b]);

    // 3. Partition offsets: integer prefix-sum recurrence.
    let c = CodeletBuilder::new("join.c:160-171", "join")
        .pattern("INT: partition prefix sum")
        .array("part", Precision::I32)
        .param_loop("n")
        .store_at("part", vec![AffineExpr::lit(1)], AffineExpr::lit(1), |b| {
            b.load_off("part", &[1], 0) + b.load_off("part", &[1], 1)
        })
        .build();
    let b = al.bind_vecs(&c, table, &[table - 1]);
    let i_part = ab.codelet(c, vec![b]);

    // Residue: tuple materialisation glue.
    let c = CodeletBuilder::new("spill-glue", "join")
        .pattern("INT: spill buffer touch")
        .array("t", Precision::I64)
        .param_loop("n")
        .store("t", &[1], |b| b.constant(0.0))
        .build();
    let mut cc = c;
    cc.extractable = false;
    let b = al.bind_vecs(&cc, keys / 4, &[keys / 4]);
    let i_hidden = ab.codelet(cc, vec![b]);

    ab.invoke(i_build, 0, 2 * rs)
        .invoke(i_probe, 0, 4 * rs)
        .invoke(i_part, 0, 2 * rs)
        .invoke(i_hidden, 0, rs)
        .rounds(class.rounds() * 2);
    ab.build()
}

/// `scan` — scan-heavy columnar kernels.
fn build_scan(class: Class) -> Application {
    let mut al = Alloc::new();
    let rs = class.repeat_scale();
    let mut ab = ApplicationBuilder::new("scan");
    let col = class.big_vec();

    // 1. Selection: stream one column, reduce (the predicate count).
    let c = CodeletBuilder::new("scan.c:20-33", "scan")
        .pattern("INT: selection scan reduction")
        .array("col", Precision::I32)
        .param_loop("n")
        .update_acc("hits", BinOp::Add, |b| b.load("col", &[1]))
        .build();
    let b = al.bind_vecs(&c, col, &[col]);
    let i_sel = ab.codelet(c, vec![b]);

    // 2. Projection: combine two columns into an output column.
    let c = CodeletBuilder::new("scan.c:41-55", "scan")
        .pattern("INT: two-column projection")
        .array("out", Precision::I64)
        .array("a", Precision::I64)
        .array("b", Precision::I64)
        .param_loop("n")
        .store("out", &[1], |b| b.load("a", &[1]) + b.load("b", &[1]))
        .build();
    let b = al.bind_vecs(&c, col, &[col]);
    let i_proj = ab.codelet(c, vec![b]);

    // 3. Strided extract: pull one column out of a 4-wide row layout.
    let c = CodeletBuilder::new("scan.c:62-75", "scan")
        .pattern("INT: strided column extract")
        .array("out", Precision::I32)
        .array("wide", Precision::I32)
        .param_loop("n")
        .store("out", &[1], |b| b.load("wide", &[4]))
        .build();
    let narrow = class.med_vec();
    let b = al.bind(
        &c,
        &[(narrow, narrow as i64), (4 * narrow, 4 * narrow as i64)],
        &[narrow],
    );
    let i_ext = ab.codelet(c, vec![b]);

    // Residue: page-header bookkeeping.
    let c = CodeletBuilder::new("page-glue", "scan")
        .pattern("INT: page header touch")
        .array("h", Precision::I32)
        .param_loop("n")
        .store("h", &[1], |b| b.constant(1.0))
        .build();
    let mut cc = c;
    cc.extractable = false;
    let b = al.bind_vecs(&cc, narrow / 4, &[narrow / 4]);
    let i_hidden = ab.codelet(cc, vec![b]);

    ab.invoke(i_sel, 0, 3 * rs)
        .invoke(i_proj, 0, 2 * rs)
        .invoke(i_ext, 0, 2 * rs)
        .invoke(i_hidden, 0, rs)
        .rounds(class.rounds() * 2);
    ab.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigdata_has_three_apps_with_nine_extractable_codelets() {
        let suite = bigdata_suite(Class::Test);
        let names: Vec<&str> = suite.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, BIGDATA_APPS);
        for app in &suite {
            app.validate();
        }
        let n: usize = suite.iter().map(|a| a.extractable().len()).sum();
        assert_eq!(n, 9, "three kernels per application");
    }

    #[test]
    fn every_bigdata_app_has_non_extractable_residue() {
        for app in bigdata_suite(Class::Test) {
            let hidden = app.codelets.iter().filter(|c| !c.extractable).count();
            assert!(hidden >= 1, "{} must have uncovered loops", app.name);
        }
    }

    #[test]
    fn bigdata_is_low_fp_intensity() {
        // The defining trait of the suite: no floating-point arrays at
        // all — every codelet works on integer data.
        for app in bigdata_suite(Class::Test) {
            for c in &app.codelets {
                assert!(
                    c.arrays.iter().all(|a| !a.elem.is_float()),
                    "{} has a float array",
                    c.qualified_name()
                );
            }
        }
    }

    #[test]
    fn bigdata_classes_scale_invocations_not_footprints() {
        let t = bigdata_suite(Class::Test);
        let b = bigdata_suite(Class::B);
        assert_eq!(t[0].codelets[0].name, b[0].codelets[0].name);
        assert!(b[0].invocations_of(0) > t[0].invocations_of(0));
        assert_eq!(
            t[0].contexts[0][0].footprint_bytes(&t[0].codelets[0]),
            b[0].contexts[0][0].footprint_bytes(&b[0].codelets[0]),
        );
    }

    #[test]
    fn bigdata_app_rejects_unknown_names() {
        let caught = std::panic::catch_unwind(|| bigdata_app("tpc-h", Class::Test));
        assert!(caught.is_err());
    }
}

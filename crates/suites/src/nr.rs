//! The 28 Numerical Recipes codelets of Table 3.
//!
//! Each NR code consists of a single computation kernel, so there is a
//! one-to-one mapping between NR benchmarks and NR codelets (§4.1). Every
//! kernel below reproduces its Table 3 row: computation pattern, stride
//! vocabulary (`0`, `1`, `-1`, `2`, `LDA`, `LDA+1`, stencil), floating-
//! point precision (DP/SP/MP), and vectorization character (recurrences
//! and LDA-strided loops stay scalar, contiguous loops vectorize).

use fgbs_extract::{Application, ApplicationBuilder};
use fgbs_isa::{AffineExpr, BinOp, Codelet, CodeletBuilder, Precision};

use crate::common::{Alloc, Class};

/// Invocations per NR benchmark run.
const NR_INVOCATIONS: u64 = 32;

fn single_app(codelet: Codelet, arrays: &[(u64, i64)], params: &[u64]) -> Application {
    let mut alloc = Alloc::new();
    let binding = alloc.bind(&codelet, arrays, params);
    let name = codelet.name.clone();
    let mut ab = ApplicationBuilder::new(name);
    let i = ab.codelet(codelet, vec![binding]);
    ab.invoke(i, 0, NR_INVOCATIONS);
    ab.build()
}

fn vec_app(codelet: Codelet, len: u64, params: &[u64]) -> Application {
    let arrays: Vec<(u64, i64)> = codelet
        .arrays
        .iter()
        .map(|_| (len, len as i64))
        .collect();
    single_app(codelet, &arrays, params)
}

/// Names of the 28 NR codelets, in Table 3's dendrogram order.
pub fn nr_codelet_names() -> Vec<&'static str> {
    vec![
        "toeplz_1", "rstrct_29", "mprove_8", "toeplz_4", "realft_4", "toeplz_3", "svbksb_3",
        "lop_13", "toeplz_2", "four1_2", "tridag_2", "tridag_1", "ludcmp_4", "hqr_15",
        "relax2_26", "svdcmp_14", "svdcmp_13", "hqr_13", "hqr_12_sq", "jacobi_5", "hqr_12",
        "svdcmp_11", "elmhes_11", "mprove_9", "matadd_16", "svdcmp_6", "elmhes_10", "balanc_3",
    ]
}

/// Build the NR suite: 28 single-codelet applications.
pub fn nr_suite(class: Class) -> Vec<Application> {
    let sm = class.small_vec();
    let md = class.med_vec();
    let _bg = class.big_vec(); // reserved for future DRAM-bound variants
    let ms = class.mat_side();
    let bs = class.big_mat_side();

    let mut suite = Vec::with_capacity(28);

    // -- toeplz_1: DP, 2 simultaneous reductions, strides 0 & 1 & -1.
    {
        let c = CodeletBuilder::new("toeplz_1", "toeplz_1")
            .pattern("DP: 2 simultaneous reductions")
            .array("r", Precision::F64)
            .array("x", Precision::F64)
            .array("q", Precision::F64)
            .array("y", Precision::F64)
            .param_loop("n")
            .update_acc("sd", BinOp::Add, |b| {
                // r[i] * x[n-1-i]: descending operand.
                let rev = b.load_expr(
                    "x",
                    vec![AffineExpr::lit(-1)],
                    AffineExpr::new(-1, 1),
                );
                b.load("r", &[1]) * rev
            })
            .update_acc("sn", BinOp::Add, |b| b.load("q", &[1]) * b.load("y", &[1]))
            .build();
        suite.push(vec_app(c, md, &[md]));
    }

    // -- rstrct_29: DP, MG Laplacian fine-to-coarse mesh transition
    //    (stencil on a stride-2 fine grid).
    {
        let m = bs / 2 - 2;
        let fl = AffineExpr::new(1, 1); // fine centre offset (row+1, col+1)
        let c = CodeletBuilder::new("rstrct_29", "rstrct_29")
            .pattern("DP: MG Laplacian fine to coarse mesh transition")
            .array("coarse", Precision::F64)
            .array("fine", Precision::F64)
            .param_loop("i")
            .param_loop("j")
            .store_at(
                "coarse",
                vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                AffineExpr::zero(),
                move |b| {
                    let strides = vec![AffineExpr::lda(2), AffineExpr::lit(2)];
                    let centre = b.load_expr("fine", strides.clone(), fl);
                    let east = b.load_expr(
                        "fine",
                        strides.clone(),
                        AffineExpr::new(fl.consts + 1, fl.lda),
                    );
                    let west = b.load_expr(
                        "fine",
                        strides.clone(),
                        AffineExpr::new(fl.consts - 1, fl.lda),
                    );
                    let north = b.load_expr(
                        "fine",
                        strides.clone(),
                        AffineExpr::new(fl.consts, fl.lda + 1),
                    );
                    let south = b.load_expr("fine", strides, AffineExpr::new(fl.consts, fl.lda - 1));
                    centre * 0.5 + (east + west + north + south) * 0.125
                },
            )
            .build();
        // coarse is m×m with lda m; fine is (2m+4)×(2m+4) with lda 2m+4.
        let fld = 2 * m + 4;
        suite.push(single_app(
            c,
            &[(m * m, m as i64), (fld * fld, fld as i64)],
            &[m, m],
        ));
    }

    // -- mprove_8: MP, dense matrix × vector product (f32 matrix, f64 x).
    {
        let c = CodeletBuilder::new("mprove_8", "mprove_8")
            .pattern("MP: Dense Matrix x vector product")
            .array("a", Precision::F32)
            .array("x", Precision::F64)
            .param_loop("i")
            .param_loop("j")
            .update_acc("sdp", BinOp::Add, |b| {
                let row = b.load_expr(
                    "a",
                    vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                    AffineExpr::zero(),
                );
                row * b.load("x", &[0, 1])
            })
            .build();
        let side = bs;
        suite.push(single_app(
            c,
            &[(side * side, side as i64), (side, side as i64)],
            &[side, side],
        ));
    }

    // -- toeplz_4: DP, vector multiply in ascending/descending order.
    {
        let c = CodeletBuilder::new("toeplz_4", "toeplz_4")
            .pattern("DP: Vector multiply in asc./desc. order")
            .array("u", Precision::F64)
            .array("w", Precision::F64)
            .array("y", Precision::F64)
            .array("z", Precision::F64)
            .param_loop("n")
            .store("w", &[1], |b| b.load("u", &[1]) * 0.75)
            .store_at(
                "z",
                vec![AffineExpr::lit(-1)],
                AffineExpr::new(-1, 1),
                |b| b.load("y", &[1]) * 1.25,
            )
            .build();
        suite.push(vec_app(c, md, &[md]));
    }

    // -- realft_4: DP, FFT butterfly computation (strides 0 & 2 & -2).
    {
        let c = CodeletBuilder::new("realft_4", "realft_4")
            .pattern("DP: FFT butterfly computation")
            .array("d", Precision::F64)
            .array("e", Precision::F64)
            .param_loop("n2")
            .store("d", &[2], |b| {
                b.load("d", &[2]) * 0.6 + b.load("e", &[2]) * 0.4
            })
            .store_at("d", vec![AffineExpr::lit(2)], AffineExpr::lit(1), |b| {
                let lo = b.load_off("d", &[2], 1);
                let hi = b.load_off("e", &[2], 1);
                lo * 0.6 - hi * 0.4
            })
            .build();
        suite.push(vec_app(c, sm, &[sm / 2 - 1]));
    }

    // -- toeplz_3: DP, 3 simultaneous reductions.
    {
        let c = CodeletBuilder::new("toeplz_3", "toeplz_3")
            .pattern("DP: 3 simultaneous reductions")
            .array("a", Precision::F64)
            .array("b", Precision::F64)
            .array("d", Precision::F64)
            .param_loop("n")
            .update_acc("s1", BinOp::Add, |bd| bd.load("a", &[1]) * bd.load("b", &[1]))
            .update_acc("s2", BinOp::Add, |bd| bd.load("b", &[1]) * bd.load("d", &[1]))
            .update_acc("s3", BinOp::Add, |bd| bd.load("a", &[1]) * bd.load("d", &[1]))
            .build();
        suite.push(vec_app(c, md, &[md]));
    }

    // -- svbksb_3: SP, dense matrix × vector product.
    {
        let c = CodeletBuilder::new("svbksb_3", "svbksb_3")
            .pattern("SP: Dense Matrix x vector product")
            .array("a", Precision::F32)
            .array("x", Precision::F32)
            .param_loop("i")
            .param_loop("j")
            .update_acc("s", BinOp::Add, |b| {
                let row = b.load_expr(
                    "a",
                    vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                    AffineExpr::zero(),
                );
                row * b.load("x", &[0, 1])
            })
            .build();
        let side = bs;
        suite.push(single_app(
            c,
            &[(side * side, side as i64), (side, side as i64)],
            &[side, side],
        ));
    }

    // -- lop_13: DP, Laplacian finite difference, constant coefficients.
    {
        let centre = AffineExpr::new(1, 1);
        let c = CodeletBuilder::new("lop_13", "lop_13")
            .pattern("DP: Laplacian finite difference constant coefficients")
            .array("out", Precision::F64)
            .array("u", Precision::F64)
            .param_loop("i")
            .param_loop("j")
            .store_at(
                "out",
                vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                centre,
                move |b| {
                    let s = vec![AffineExpr::lda(1), AffineExpr::lit(1)];
                    let e = b.load_expr("u", s.clone(), AffineExpr::new(centre.consts + 1, 1));
                    let w = b.load_expr("u", s.clone(), AffineExpr::new(centre.consts - 1, 1));
                    let n = b.load_expr("u", s.clone(), AffineExpr::new(centre.consts, 2));
                    let so = b.load_expr("u", s.clone(), AffineExpr::new(centre.consts, 0));
                    let mid = b.load_expr("u", s, centre);
                    (e + w + n + so) - mid * 4.0
                },
            )
            .build();
        let side = bs;
        suite.push(single_app(
            c,
            &[(side * side, side as i64), (side * side, side as i64)],
            &[side - 2, side - 2],
        ));
    }

    // -- toeplz_2: DP, vector multiply element-wise asc./desc. order.
    {
        let c = CodeletBuilder::new("toeplz_2", "toeplz_2")
            .pattern("DP: Vector multiply element wise in asc./desc. order")
            .array("u", Precision::F64)
            .array("v", Precision::F64)
            .array("w", Precision::F64)
            .param_loop("n")
            .store("w", &[1], |b| {
                let rev = b.load_expr(
                    "v",
                    vec![AffineExpr::lit(-1)],
                    AffineExpr::new(-1, 1),
                );
                b.load("u", &[1]) * rev
            })
            .build();
        suite.push(vec_app(c, sm, &[sm]));
    }

    // -- four1_2: MP, first step FFT (stride 4).
    {
        let c = CodeletBuilder::new("four1_2", "four1_2")
            .pattern("MP: First step FFT")
            .array("d", Precision::F32)
            .array("w", Precision::F64)
            .param_loop("n4")
            .store("d", &[4], |b| {
                b.load("d", &[4]) * 0.7 - b.load("w", &[4]) * 0.3
            })
            .store_at("d", vec![AffineExpr::lit(4)], AffineExpr::lit(2), |b| {
                let lo = b.load_off("d", &[4], 2);
                let tw = b.load_off("w", &[4], 2);
                lo * 0.7 + tw * 0.3
            })
            .build();
        suite.push(vec_app(c, md, &[md / 4 - 1]));
    }

    // -- tridag_2: DP, first-order recurrence.
    {
        let c = CodeletBuilder::new("tridag_2", "tridag_2")
            .pattern("DP: First order recurrence")
            .array("u", Precision::F64)
            .array("gam", Precision::F64)
            .param_loop("n")
            .store_at("u", vec![AffineExpr::lit(-1)], AffineExpr::new(-2, 1), |b| {
                let next = b.load_expr("u", vec![AffineExpr::lit(-1)], AffineExpr::new(-1, 1));
                let g = b.load_expr("gam", vec![AffineExpr::lit(-1)], AffineExpr::new(-1, 1));
                next - g * 0.5
            })
            .build();
        suite.push(vec_app(c, sm, &[sm - 2]));
    }

    // -- tridag_1: DP, first-order recurrence with division.
    {
        let c = CodeletBuilder::new("tridag_1", "tridag_1")
            .pattern("DP: First order recurrence")
            .array("a", Precision::F64)
            .array("b", Precision::F64)
            .array("r", Precision::F64)
            .array("u", Precision::F64)
            .param_loop("n")
            .set_acc("bet", |bd| {
                let prev = bd.acc("bet");
                bd.load("b", &[1]) - bd.load("a", &[1]) * prev * 0.01
            })
            .store("u", &[1], |bd| {
                let bet = bd.acc("bet");
                (bd.load("r", &[1]) - bd.load("a", &[1])) / bet
            })
            .build();
        suite.push(vec_app(c, sm, &[sm]));
    }

    // -- ludcmp_4: SP, dot product over lower half square matrix.
    {
        let c = CodeletBuilder::new("ludcmp_4", "ludcmp_4")
            .pattern("SP: Dot product over lower half square matrix")
            .array("a", Precision::F32)
            .array("v", Precision::F32)
            .param_loop("i")
            .tri_loop()
            .update_acc("s", BinOp::Add, |b| {
                let row = b.load_expr(
                    "a",
                    vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                    AffineExpr::zero(),
                );
                row * b.load("v", &[0, 1])
            })
            .build();
        let side = bs;
        suite.push(single_app(
            c,
            &[(side * side, side as i64), (side, side as i64)],
            &[side],
        ));
    }

    // -- hqr_15: SP, addition on the diagonal elements of a matrix
    //    (stride LDA + 1).
    {
        let c = CodeletBuilder::new("hqr_15", "hqr_15")
            .pattern("SP: Addition on the diagonal elements of a matrix")
            .array("a", Precision::F32)
            .fixed_loop(48)
            .param_loop("n")
            .store_at(
                "a",
                vec![AffineExpr::zero(), AffineExpr::new(1, 1)],
                AffineExpr::zero(),
                |b| {
                    let d = b.load_expr(
                        "a",
                        vec![AffineExpr::zero(), AffineExpr::new(1, 1)],
                        AffineExpr::zero(),
                    );
                    d + 0.3
                },
            )
            .build();
        let side = ms;
        suite.push(single_app(c, &[(side * side, side as i64)], &[side]));
    }

    // -- relax2_26: DP, red-black sweeps Laplacian operator (in place).
    {
        let centre = AffineExpr::new(1, 1);
        let c = CodeletBuilder::new("relax2_26", "relax2_26")
            .pattern("DP: Red Black Sweeps Laplacian operator")
            .array("u", Precision::F64)
            .array("rhs", Precision::F64)
            .param_loop("i")
            .param_loop("j")
            .store_at(
                "u",
                vec![AffineExpr::lda(1), AffineExpr::lit(2)],
                centre,
                move |b| {
                    let s = vec![AffineExpr::lda(1), AffineExpr::lit(2)];
                    let e = b.load_expr("u", s.clone(), AffineExpr::new(centre.consts + 1, 1));
                    let w = b.load_expr("u", s.clone(), AffineExpr::new(centre.consts - 1, 1));
                    let n = b.load_expr("u", s.clone(), AffineExpr::new(centre.consts, 2));
                    let so = b.load_expr("u", s.clone(), AffineExpr::new(centre.consts, 0));
                    let f = b.load_expr("rhs", s, centre);
                    (e + w + n + so - f) * 0.25
                },
            )
            .build();
        let side = bs;
        suite.push(single_app(
            c,
            &[(side * side, side as i64), (side * side, side as i64)],
            &[side - 2, side / 2 - 2],
        ));
    }

    // -- svdcmp_14: DP, vector divide element-wise.
    {
        let c = CodeletBuilder::new("svdcmp_14", "svdcmp_14")
            .pattern("DP: Vector divide element wise")
            .array("u", Precision::F64)
            .array("v", Precision::F64)
            .array("w", Precision::F64)
            .param_loop("n")
            .store("w", &[1], |b| b.load("u", &[1]) / b.load("v", &[1]))
            .build();
        suite.push(vec_app(c, md, &[md]));
    }

    // -- svdcmp_13: DP, norm + vector divide.
    {
        let c = CodeletBuilder::new("svdcmp_13", "svdcmp_13")
            .pattern("DP: Norm + Vector divide")
            .array("u", Precision::F64)
            .array("w", Precision::F64)
            .param_loop("n")
            .update_acc("s", BinOp::Add, |b| {
                let x = b.load("u", &[1]);
                let y = b.load("u", &[1]);
                x * y
            })
            .store("w", &[1], |b| b.load("u", &[1]) / std::f64::consts::SQRT_2)
            .build();
        suite.push(vec_app(c, md, &[md]));
    }

    // -- hqr_13: DP, sum of the absolute values of a matrix column.
    {
        let c = CodeletBuilder::new("hqr_13", "hqr_13")
            .pattern("DP: Sum of the absolute values of a matrix column")
            .array("a", Precision::F64)
            .param_loop("n")
            .update_acc("s", BinOp::Add, |b| b.load("a", &[1]).abs())
            .build();
        let side = ms * 2;
        suite.push(single_app(c, &[(side * side, side as i64)], &[side * side / 2]));
    }

    // -- hqr_12_sq: SP, sum of a square matrix.
    {
        let c = CodeletBuilder::new("hqr_12_sq", "hqr_12_sq")
            .pattern("SP: Sum of a square matrix")
            .array("a", Precision::F32)
            .param_loop("i")
            .param_loop("j")
            .update_acc("s", BinOp::Add, |b| {
                b.load_expr(
                    "a",
                    vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                    AffineExpr::zero(),
                )
            })
            .build();
        let side = bs;
        suite.push(single_app(c, &[(side * side, side as i64)], &[side, side]));
    }

    // -- jacobi_5: SP, sum of the upper half of a square matrix.
    {
        let c = CodeletBuilder::new("jacobi_5", "jacobi_5")
            .pattern("SP: Sum of the upper half of a square matrix")
            .array("a", Precision::F32)
            .param_loop("i")
            .tri_loop()
            .update_acc("s", BinOp::Add, |b| {
                b.load_expr(
                    "a",
                    vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                    AffineExpr::lit(1),
                )
            })
            .build();
        let side = bs;
        suite.push(single_app(c, &[(side * side + side, side as i64)], &[side]));
    }

    // -- hqr_12: SP, sum of the lower half of a square matrix.
    {
        let c = CodeletBuilder::new("hqr_12", "hqr_12")
            .pattern("SP: Sum of the lower half of a square matrix")
            .array("a", Precision::F32)
            .param_loop("i")
            .tri_loop()
            .update_acc("s", BinOp::Add, |b| {
                b.load_expr(
                    "a",
                    vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                    AffineExpr::zero(),
                )
            })
            .build();
        let side = bs;
        suite.push(single_app(c, &[(side * side, side as i64)], &[side]));
    }

    // -- svdcmp_11: DP, multiplying a matrix row by a scalar (stride LDA).
    {
        let c = CodeletBuilder::new("svdcmp_11", "svdcmp_11")
            .pattern("DP: Multiplying a matrix row by a scalar")
            .array("a", Precision::F64)
            .fixed_loop(64)
            .param_loop("n")
            .store_at(
                "a",
                vec![AffineExpr::lit(1), AffineExpr::lda(1)],
                AffineExpr::lit(3),
                |b| {
                    let v = b.load_expr(
                        "a",
                        vec![AffineExpr::lit(1), AffineExpr::lda(1)],
                        AffineExpr::lit(3),
                    );
                    v * 0.98
                },
            )
            .build();
        let side = bs;
        suite.push(single_app(c, &[(side * side, side as i64)], &[side]));
    }

    // -- elmhes_11: DP, linear combination of matrix rows (stride LDA).
    {
        let c = CodeletBuilder::new("elmhes_11", "elmhes_11")
            .pattern("DP: Linear combination of matrix rows")
            .array("a", Precision::F64)
            .fixed_loop(48)
            .param_loop("n")
            .store_at(
                "a",
                vec![AffineExpr::lit(1), AffineExpr::lda(1)],
                AffineExpr::lit(1),
                |b| {
                    let this = b.load_expr(
                        "a",
                        vec![AffineExpr::lit(1), AffineExpr::lda(1)],
                        AffineExpr::lit(1),
                    );
                    let other = b.load_expr(
                        "a",
                        vec![AffineExpr::lit(1), AffineExpr::lda(1)],
                        AffineExpr::lit(2),
                    );
                    this + other * 0.5
                },
            )
            .build();
        let side = bs;
        suite.push(single_app(c, &[(side * side, side as i64)], &[side]));
    }

    // -- mprove_9: DP, subtracting a vector with a vector.
    {
        let c = CodeletBuilder::new("mprove_9", "mprove_9")
            .pattern("DP: Substracting a vector with a vector")
            .array("b", Precision::F64)
            .array("r", Precision::F64)
            .param_loop("n")
            .store("r", &[1], |bd| bd.load("b", &[1]) - bd.load("r", &[1]))
            .build();
        suite.push(vec_app(c, md, &[md]));
    }

    // -- matadd_16: DP, sum of two square matrices element-wise.
    {
        let c = CodeletBuilder::new("matadd_16", "matadd_16")
            .pattern("DP: Sum of two square matrices element wise")
            .array("a", Precision::F64)
            .array("b", Precision::F64)
            .array("c", Precision::F64)
            .param_loop("i")
            .param_loop("j")
            .store_at(
                "c",
                vec![AffineExpr::lda(1), AffineExpr::lit(1)],
                AffineExpr::zero(),
                |bd| {
                    let s = vec![AffineExpr::lda(1), AffineExpr::lit(1)];
                    let x = bd.load_expr("a", s.clone(), AffineExpr::zero());
                    let y = bd.load_expr("b", s, AffineExpr::zero());
                    x + y
                },
            )
            .build();
        let side = bs;
        suite.push(single_app(
            c,
            &[
                (side * side, side as i64),
                (side * side, side as i64),
                (side * side, side as i64),
            ],
            &[side, side],
        ));
    }

    // -- svdcmp_6: DP, sum of the absolute values of a matrix row
    //    (strides 0 & LDA).
    {
        let c = CodeletBuilder::new("svdcmp_6", "svdcmp_6")
            .pattern("DP: Sum of the absolute values of a matrix row")
            .array("a", Precision::F64)
            .fixed_loop(48)
            .param_loop("n")
            .update_acc("s", BinOp::Add, |b| {
                b.load_expr(
                    "a",
                    vec![AffineExpr::lit(1), AffineExpr::lda(1)],
                    AffineExpr::lit(2),
                )
                .abs()
            })
            .build();
        let side = bs;
        suite.push(single_app(c, &[(side * side, side as i64)], &[side]));
    }

    // -- elmhes_10: DP, linear combination of matrix columns (stride 1).
    {
        let c = CodeletBuilder::new("elmhes_10", "elmhes_10")
            .pattern("DP: Linear combination of matrix columns")
            .array("a", Precision::F64)
            .fixed_loop(32)
            .param_loop("rows")
            .store_at(
                "a",
                vec![AffineExpr::lda(2), AffineExpr::lit(1)],
                AffineExpr::lda(3),
                |b| {
                    let this = b.load_expr(
                        "a",
                        vec![AffineExpr::lda(2), AffineExpr::lit(1)],
                        AffineExpr::lda(3),
                    );
                    let other = b.load_expr(
                        "a",
                        vec![AffineExpr::lda(2), AffineExpr::lit(1)],
                        AffineExpr::lda(5),
                    );
                    this + other * 0.5
                },
            )
            .build();
        let side = bs;
        suite.push(single_app(c, &[(side * side, side as i64)], &[side]));
    }

    // -- balanc_3: DP, vector multiply element-wise.
    {
        let c = CodeletBuilder::new("balanc_3", "balanc_3")
            .pattern("DP: Vector multiply element wise")
            .array("u", Precision::F64)
            .array("v", Precision::F64)
            .param_loop("n")
            .store("v", &[1], |b| b.load("u", &[1]) * 0.95)
            .build();
        suite.push(vec_app(c, sm, &[sm]));
    }

    assert_eq!(suite.len(), 28, "Table 3 lists 28 NR codelets");
    // Reorder to match nr_codelet_names(): built in that order already.
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbs_isa::{carried_dependence, compile, CompileMode, TargetSpec};

    fn by_name(suite: &[Application], name: &str) -> Codelet {
        suite
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .codelets[0]
            .clone()
    }

    #[test]
    fn names_match_table3_order() {
        let suite = nr_suite(Class::Test);
        let names: Vec<&str> = suite.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, nr_codelet_names());
    }

    #[test]
    fn recurrences_are_scalar() {
        let suite = nr_suite(Class::Test);
        for name in ["tridag_1", "tridag_2", "relax2_26"] {
            let c = by_name(&suite, name);
            assert!(carried_dependence(&c), "{name} must carry a dependence");
            let k = compile(&c, &TargetSpec::sse128(), CompileMode::InApp);
            assert_eq!(k.vector_ratio_fp(), 0.0, "{name} must be scalar");
        }
    }

    #[test]
    fn contiguous_kernels_vectorize() {
        let suite = nr_suite(Class::Test);
        for name in [
            "toeplz_1",
            "toeplz_3",
            "svdcmp_14",
            "mprove_9",
            "matadd_16",
            "elmhes_10",
            "balanc_3",
            "hqr_12",
            "jacobi_5",
        ] {
            let c = by_name(&suite, name);
            let k = compile(&c, &TargetSpec::sse128(), CompileMode::InApp);
            assert!(
                k.vector_ratio_fp() > 0.9,
                "{name} should vectorize, got {}",
                k.vector_ratio_fp()
            );
        }
    }

    #[test]
    fn lda_strided_kernels_stay_scalar() {
        let suite = nr_suite(Class::Test);
        for name in ["svdcmp_11", "elmhes_11", "svdcmp_6", "hqr_15", "realft_4", "four1_2"] {
            let c = by_name(&suite, name);
            let k = compile(&c, &TargetSpec::sse128(), CompileMode::InApp);
            assert_eq!(
                k.vector_ratio_fp(),
                0.0,
                "{name} must be scalar (LDA / non-unit stride)"
            );
        }
    }

    #[test]
    fn division_cluster_divides() {
        let suite = nr_suite(Class::Test);
        for name in ["svdcmp_14", "svdcmp_13", "tridag_1"] {
            let c = by_name(&suite, name);
            let k = compile(&c, &TargetSpec::sse128(), CompileMode::InApp);
            assert!(
                k.count_op(fgbs_isa::VOp::FDiv) > 0.0,
                "{name} must contain a divide"
            );
        }
    }

    #[test]
    fn precision_labels_match_table3() {
        let suite = nr_suite(Class::Test);
        assert_eq!(by_name(&suite, "toeplz_1").precision_label(), "DP");
        assert_eq!(by_name(&suite, "mprove_8").precision_label(), "MP");
        assert_eq!(by_name(&suite, "four1_2").precision_label(), "MP");
        assert_eq!(by_name(&suite, "svbksb_3").precision_label(), "SP");
        assert_eq!(by_name(&suite, "ludcmp_4").precision_label(), "SP");
        assert_eq!(by_name(&suite, "hqr_12_sq").precision_label(), "SP");
    }

    #[test]
    fn all_interpretable_in_bounds() {
        // Every NR codelet must execute its Test-class binding without
        // out-of-bounds accesses.
        let suite = nr_suite(Class::Test);
        for app in &suite {
            let c = &app.codelets[0];
            let b = &app.contexts[0][0];
            let mut mem = fgbs_isa::Memory::for_binding(c, b);
            let r = fgbs_isa::interpret(c, b, &mut mem)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            assert!(r.iterations > 0, "{}", app.name);
        }
    }

    #[test]
    fn triangular_kernels_use_tri_loops() {
        let suite = nr_suite(Class::Test);
        for name in ["ludcmp_4", "jacobi_5", "hqr_12"] {
            let c = by_name(&suite, name);
            assert!(
                c.nest
                    .dims
                    .iter()
                    .any(|d| matches!(d.trip, fgbs_isa::Trip::Triangular)),
                "{name} sweeps half a matrix"
            );
        }
    }
}

//! Deterministic fault injection and resilience policies for the fgbs
//! stack.
//!
//! The paper's Step D treats failure as a first-class loop: ill-behaved
//! codelets are detected, rejected and the selection retried. This crate
//! gives the storage and serving layers the same discipline, in three
//! parts:
//!
//! 1. **Failpoints** — named sites (`store.read`, `serve.write`,
//!    `stage.reduce`, …) where a seeded plan can inject I/O errors,
//!    delays, short writes or corrupted bytes. Decisions are a pure
//!    function of `(seed, site, per-site hit index)`, so a given
//!    `--fault-seed`/`--fault-spec` pair injects the *same* faults at the
//!    same sites regardless of thread interleaving. With no plan
//!    installed every probe is a single relaxed atomic load.
//! 2. **Retry** — [`RetryPolicy`] wraps transient I/O in bounded retries
//!    with exponential backoff and deterministic jitter.
//! 3. **Deadlines** — [`Deadline`] is a `Copy` wall-clock budget that
//!    request handlers thread through pipeline stages; stages check it at
//!    their boundaries and bail out instead of hanging.
//!
//! Injections and retries are counted both locally (for test assertions)
//! and through `fgbs-trace` (`fault.injected` / `fault.retries` counters
//! plus per-site `fault.<site>` stats), so a chaos run's behaviour shows
//! up in `fgbs trace summary` and the serve `/metrics` endpoint.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail with a transient [`io::Error`] (`ErrorKind::Interrupted`).
    Err,
    /// Sleep for the given number of milliseconds.
    Delay(u64),
    /// Truncate a write to at most this many bytes.
    Short(usize),
    /// Flip one byte of the data passing through the site.
    Corrupt,
}

/// One rule of a [`FaultPlan`]: a site, an action, a firing probability
/// and an optional cap on total fires.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRule {
    /// Failpoint name the rule arms (exact match).
    pub site: String,
    /// Action taken when the rule fires.
    pub action: FaultAction,
    /// Per-hit firing probability in `[0, 1]`.
    pub prob: f64,
    /// Maximum number of fires (`u64::MAX` when unlimited).
    pub max_fires: u64,
}

/// A parsed, installable fault plan: a seed plus a list of site rules.
///
/// The textual form (accepted by [`FaultPlan::parse`] and the CLI's
/// `--fault-spec`) is a comma-separated list of `site=action` entries:
///
/// ```text
/// store.read=err:0.25          transient read error, 25 % of hits
/// store.read.bytes=corrupt:0.5 flip a byte in half the reads
/// store.write=short:1.0:8      truncate every write to 8 bytes
/// stage.reduce=delay:1.0:20    sleep 20 ms at the reduce boundary
/// serve.read=err#2             fail the first matching hits, max 2 fires
/// ```
///
/// Actions: `err[:prob]`, `corrupt[:prob]`, `delay[:prob[:ms]]`,
/// `short[:prob[:keep]]`. A `#n` suffix caps total fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed feeding every per-hit decision.
    pub seed: u64,
    /// The armed rules.
    pub rules: Vec<SiteRule>,
}

impl FaultPlan {
    /// An empty plan (arming nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a rule; builder-style, used by tests and programmatic plans.
    pub fn with_rule(
        mut self,
        site: &str,
        action: FaultAction,
        prob: f64,
        max_fires: u64,
    ) -> FaultPlan {
        self.rules.push(SiteRule {
            site: site.to_string(),
            action,
            prob,
            max_fires,
        });
        self
    }

    /// Parse the `--fault-spec` grammar documented on [`FaultPlan`].
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (site, action_str) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{entry}` is missing `=`"))?;
            let (action_str, max_fires) = match action_str.split_once('#') {
                Some((a, n)) => (
                    a,
                    n.parse::<u64>()
                        .map_err(|_| format!("bad fire cap in `{entry}`"))?,
                ),
                None => (action_str, u64::MAX),
            };
            let mut parts = action_str.split(':');
            let kind = parts.next().unwrap_or("");
            let prob = match parts.next() {
                Some(p) => p
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("bad probability in `{entry}`"))?,
                None => 1.0,
            };
            let param = parts
                .next()
                .map(|p| {
                    p.parse::<u64>()
                        .map_err(|_| format!("bad parameter in `{entry}`"))
                })
                .transpose()?;
            let action = match kind {
                "err" => FaultAction::Err,
                "corrupt" => FaultAction::Corrupt,
                "delay" => FaultAction::Delay(param.unwrap_or(5)),
                "short" => FaultAction::Short(param.unwrap_or(8) as usize),
                other => return Err(format!("unknown fault action `{other}` in `{entry}`")),
            };
            plan.rules.push(SiteRule {
                site: site.trim().to_string(),
                action,
                prob,
                max_fires,
            });
        }
        Ok(plan)
    }
}

/// A compiled rule: the static description plus live hit/fire counters.
#[derive(Debug)]
struct ArmedRule {
    rule: SiteRule,
    hits: AtomicU64,
    fires: AtomicU64,
}

#[derive(Debug, Default)]
struct ActivePlan {
    seed: u64,
    rules: Vec<ArmedRule>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static RETRIES: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static RwLock<Option<Arc<ActivePlan>>> {
    static REGISTRY: RwLock<Option<Arc<ActivePlan>>> = RwLock::new(None);
    &REGISTRY
}

/// Install a plan process-wide, arming its failpoints. Replaces any
/// previous plan and resets the global injection counters.
pub fn install(plan: FaultPlan) {
    let active = ActivePlan {
        seed: plan.seed,
        rules: plan
            .rules
            .into_iter()
            .map(|rule| ArmedRule {
                rule,
                hits: AtomicU64::new(0),
                fires: AtomicU64::new(0),
            })
            .collect(),
    };
    let armed = !active.rules.is_empty();
    *registry().write() = Some(Arc::new(active));
    INJECTED.store(0, Ordering::Relaxed);
    RETRIES.store(0, Ordering::Relaxed);
    ENABLED.store(armed, Ordering::Relaxed);
}

/// Disarm every failpoint and drop the installed plan.
pub fn clear() {
    ENABLED.store(false, Ordering::Relaxed);
    *registry().write() = None;
}

/// True when a non-empty plan is installed. A `false` here is the whole
/// cost of a disabled failpoint.
#[inline]
pub fn armed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Total faults injected since the current plan was installed.
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Total transient-I/O retries performed since the current plan was
/// installed (see [`RetryPolicy::run_io`]; real transient errors count
/// too, not only injected ones).
pub fn retries() -> u64 {
    RETRIES.load(Ordering::Relaxed)
}

/// Fires recorded at one site under the current plan (0 when no plan or
/// the site is not armed). Summed over all rules naming the site.
pub fn fires(site: &str) -> u64 {
    registry().read().as_ref().map_or(0, |p| {
        p.rules
            .iter()
            .filter(|r| r.rule.site == site)
            .map(|r| r.fires.load(Ordering::Relaxed))
            .sum()
    })
}

/// FNV-1a over the decision inputs; the low bits drive the per-hit coin.
fn decision_hash(seed: u64, site: &str, hit: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in seed.to_le_bytes() {
        mix(b);
    }
    for b in site.bytes() {
        mix(b);
    }
    for b in hit.to_le_bytes() {
        mix(b);
    }
    h
}

/// Query a failpoint: records a hit and returns the action to take, if
/// any rule fires. The decision depends only on the plan seed, the site
/// name and the site's hit ordinal — not on threads or timing — so total
/// fire counts are reproducible for a given workload.
pub fn decide(site: &str) -> Option<FaultAction> {
    if !armed() {
        return None;
    }
    let guard = registry().read();
    let plan = guard.as_ref()?;
    for armed_rule in plan.rules.iter().filter(|r| r.rule.site == site) {
        let hit = armed_rule.hits.fetch_add(1, Ordering::Relaxed);
        let coin = (decision_hash(plan.seed, site, hit) >> 11) as f64 / (1u64 << 53) as f64;
        if coin >= armed_rule.rule.prob {
            continue;
        }
        // Respect the fire cap without a race on the exact count: claim a
        // slot first, give it back if over.
        let fired = armed_rule.fires.fetch_add(1, Ordering::Relaxed);
        if fired >= armed_rule.rule.max_fires {
            armed_rule.fires.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        INJECTED.fetch_add(1, Ordering::Relaxed);
        fgbs_trace::counter("fault.injected", 1);
        fgbs_trace::stat(&format!("fault.{site}"), 1);
        // An armed failpoint firing is a diagnostic moment: snapshot
        // the flight-recorder window (no-op unless a dump sink is
        // installed — the chaos byte-identity suite runs sink-less).
        fgbs_trace::flightrec::trigger("failpoint", fgbs_trace::current_request_id());
        return Some(armed_rule.rule.action);
    }
    None
}

/// I/O failpoint: injects a transient error or a delay at `site`.
/// `Short`/`Corrupt` rules are ignored here (use [`short_len`] /
/// [`corrupt`] at the byte-level sites).
pub fn maybe_io(site: &str) -> io::Result<()> {
    match decide(site) {
        Some(FaultAction::Err) => Err(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected fault at {site}"),
        )),
        Some(FaultAction::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Delay-only failpoint for infallible code paths (stage boundaries,
/// worker loops). `Err` rules at the site are ignored rather than
/// panicking the stage.
pub fn maybe_delay(site: &str) {
    if let Some(FaultAction::Delay(ms)) = decide(site) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Byte-corruption failpoint: flips one deterministically-chosen byte
/// when a `Corrupt` rule fires. Returns true if the buffer was modified.
pub fn corrupt(site: &str, bytes: &mut [u8]) -> bool {
    if bytes.is_empty() {
        return false;
    }
    if let Some(FaultAction::Corrupt) = decide(site) {
        let pos = decision_hash(0x5eed, site, bytes.len() as u64) as usize % bytes.len();
        bytes[pos] ^= 0xA5;
        return true;
    }
    false
}

/// Short-write failpoint: returns how many of `len` bytes should
/// actually be written (`len` unless a `Short` rule fires).
pub fn short_len(site: &str, len: usize) -> usize {
    match decide(site) {
        Some(FaultAction::Short(keep)) => len.min(keep),
        _ => len,
    }
}

/// A wall-clock budget for one request, threaded by value through the
/// pipeline. `Copy` so configs holding one stay trivially cloneable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline this far in the future.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Deadline {
        Deadline::after(Duration::from_millis(ms))
    }

    /// True once the budget is spent.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Bounded retry with exponential backoff and deterministic jitter for
/// transient I/O (`Interrupted`, `TimedOut`, `WouldBlock`). Permanent
/// errors (`NotFound`, `PermissionDenied`, corrupt data, …) surface
/// immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retrying.
    pub attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
        }
    }
}

/// Record one transient-I/O retry against the global counter and the
/// trace series. Called by [`RetryPolicy::run_io`] and by subsystems
/// running their own retry loops (so their local counters and the
/// global ones stay consistent).
pub fn note_retry(site: &str) {
    RETRIES.fetch_add(1, Ordering::Relaxed);
    fgbs_trace::counter("fault.retries", 1);
    fgbs_trace::stat(&format!("retry.{site}"), 1);
}

/// Is this error worth retrying? Transient scheduling/timeout kinds
/// only; data-dependent failures would fail identically again.
pub fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// Backoff before retry number `retry` (0-based): `base << retry`,
    /// jittered to 50–150 % by a deterministic hash of `(salt, retry)`,
    /// capped at `cap`.
    pub fn backoff(&self, retry: u32, salt: u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << retry.min(16));
        let jitter_pm = 500 + decision_hash(salt, "backoff", retry as u64) % 1001; // ‰ of exp
        let jittered = exp.mul_f64(jitter_pm as f64 / 1000.0);
        jittered.min(self.cap)
    }

    /// Run `op`, retrying transient failures up to the policy's budget.
    /// Each retry sleeps the jittered backoff, bumps the global
    /// [`retries`] counter and the `fault.retries` trace counter, and a
    /// per-site `retry.<site>` stat.
    pub fn run_io<T>(
        &self,
        site: &str,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut retry = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && retry + 1 < self.attempts.max(1) => {
                    note_retry(site);
                    let pause = self.backoff(retry, 0x9e37_79b9);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; serialize tests that install plans.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_by_default_and_zero_cost_probe() {
        let _g = guard();
        clear();
        assert!(!armed());
        assert_eq!(decide("store.read"), None);
        assert!(maybe_io("store.read").is_ok());
        assert_eq!(short_len("store.write", 100), 100);
        let mut buf = vec![1, 2, 3];
        assert!(!corrupt("store.read.bytes", &mut buf));
        assert_eq!(buf, vec![1, 2, 3]);
    }

    #[test]
    fn disarmed_probe_cost_is_nanoseconds() {
        let _g = guard();
        clear();
        // The ≤2% traced-pipeline overhead budget rests on a disarmed
        // probe being one relaxed atomic load. Gate it at a microsecond
        // per probe — three orders of magnitude of headroom in release,
        // still comfortably green in debug builds.
        let n = 500_000u64;
        let t0 = std::time::Instant::now();
        for i in 0..n {
            assert!(maybe_io("hot.site").is_ok());
            assert_eq!(short_len("hot.site", i as usize), i as usize);
            maybe_delay("hot.site");
        }
        let per_probe_ns = t0.elapsed().as_nanos() / (3 * n as u128);
        assert!(
            per_probe_ns < 1_000,
            "disarmed probe costs {per_probe_ns} ns"
        );
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let plan = FaultPlan::parse(
            "store.read=err:0.25, store.write=short:1.0:8,serve.read=delay:0.5:20,m=corrupt#3",
            7,
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].action, FaultAction::Err);
        assert_eq!(plan.rules[0].prob, 0.25);
        assert_eq!(plan.rules[1].action, FaultAction::Short(8));
        assert_eq!(plan.rules[2].action, FaultAction::Delay(20));
        assert_eq!(plan.rules[3].action, FaultAction::Corrupt);
        assert_eq!(plan.rules[3].max_fires, 3);

        assert!(FaultPlan::parse("no-equals", 0).is_err());
        assert!(FaultPlan::parse("a=explode", 0).is_err());
        assert!(FaultPlan::parse("a=err:1.5", 0).is_err());
        assert!(FaultPlan::parse("a=err#x", 0).is_err());
    }

    #[test]
    fn decisions_are_deterministic_in_hit_order() {
        let _g = guard();
        install(FaultPlan::new(42).with_rule("s", FaultAction::Err, 0.5, u64::MAX));
        let first: Vec<bool> = (0..64).map(|_| decide("s").is_some()).collect();
        install(FaultPlan::new(42).with_rule("s", FaultAction::Err, 0.5, u64::MAX));
        let second: Vec<bool> = (0..64).map(|_| decide("s").is_some()).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|f| *f), "p=0.5 over 64 hits must fire");
        assert!(!first.iter().all(|f| *f), "p=0.5 must also pass");
        clear();
    }

    #[test]
    fn fire_caps_bound_total_injections() {
        let _g = guard();
        install(FaultPlan::new(1).with_rule("capped", FaultAction::Err, 1.0, 2));
        let fired = (0..10).filter(|_| decide("capped").is_some()).count();
        assert_eq!(fired, 2);
        assert_eq!(fires("capped"), 2);
        assert_eq!(injected(), 2);
        clear();
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let _g = guard();
        install(FaultPlan::new(3).with_rule("bytes", FaultAction::Corrupt, 1.0, u64::MAX));
        let mut buf = vec![0u8; 32];
        assert!(corrupt("bytes", &mut buf));
        assert_eq!(buf.iter().filter(|b| **b != 0).count(), 1);
        clear();
    }

    #[test]
    fn retry_recovers_from_transient_errors() {
        let _g = guard();
        clear();
        let mut failures_left = 2;
        let policy = RetryPolicy {
            attempts: 4,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        };
        let out = policy.run_io("test.op", || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(99)
            }
        });
        assert_eq!(out.unwrap(), 99);
        assert!(retries() >= 2);
    }

    #[test]
    fn retry_gives_up_after_budget_and_skips_permanent_errors() {
        let _g = guard();
        clear();
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        };
        let mut calls = 0;
        let out: io::Result<()> = policy.run_io("test.always", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "still flaky"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: io::Result<()> = policy.run_io("test.permanent", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(calls, 1, "permanent errors must not be retried");
    }

    #[test]
    fn backoff_grows_and_respects_cap() {
        let policy = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
        };
        let b0 = policy.backoff(0, 1);
        let b5 = policy.backoff(5, 1);
        assert!(b0 >= Duration::from_millis(1), "{b0:?}");
        assert!(b0 <= Duration::from_millis(3), "{b0:?}");
        assert_eq!(b5, Duration::from_millis(10), "capped");
        assert_eq!(policy.backoff(3, 7), policy.backoff(3, 7), "deterministic");
    }

    #[test]
    fn deadline_expires_and_reports_remaining() {
        let d = Deadline::after_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3000));
    }

    #[test]
    fn short_len_truncates_only_when_armed() {
        let _g = guard();
        install(FaultPlan::new(9).with_rule("w", FaultAction::Short(4), 1.0, 1));
        assert_eq!(short_len("w", 100), 4);
        assert_eq!(short_len("w", 100), 100, "cap of 1 fire");
        clear();
    }
}

//! The value proposition, measured: benchmarking a target with the full
//! suite vs with the reduced representative set. This is the simulated
//! analogue of the paper's Table 5 — the reduced suite should be an order
//! of magnitude cheaper to *run*.

use criterion::{criterion_group, criterion_main, Criterion};
use fgbs_core::{profile_reference, reduce_cached, KChoice, MicroCache, PipelineConfig};
use fgbs_extract::run_application;
use fgbs_machine::{Arch, PARK_SCALE};
use fgbs_suites::{nr_suite, Class};

fn bench_full_vs_reduced(c: &mut Criterion) {
    let cfg = PipelineConfig::fast().with_k(KChoice::Fixed(4));
    let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(12).collect();
    let suite = profile_reference(&apps, &cfg);
    let cache = MicroCache::new();
    let reduced = reduce_cached(&suite, &cfg, &cache);
    let atom = Arch::atom().scaled(PARK_SCALE);

    // Benchmarking the target the traditional way: run everything.
    c.bench_function("benchmarking/full_suite_on_atom", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for app in &apps {
                total += run_application(app, &atom, 0).total_seconds;
            }
            total
        })
    });

    // Benchmarking the target the paper's way: run the representatives'
    // microbenchmarks only (fresh measurements, no cache).
    let reps: Vec<usize> = reduced.representatives();
    c.bench_function("benchmarking/reduced_suite_on_atom", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &r in &reps {
                total += suite.codelets[r]
                    .micro
                    .run_with(&atom, 0, cfg.micro_min_seconds, cfg.micro_min_invocations)
                    .total_seconds;
            }
            total
        })
    });
}

criterion_group!(benches, bench_full_vs_reduced);
criterion_main!(benches);

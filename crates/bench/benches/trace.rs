//! The tracing subsystem, measured: per-span overhead and whole-pipeline
//! regression. The contract under test is the "cheap enough to leave on"
//! claim — a span costs under 100 ns on the hot path, and tracing a full
//! NR reduce pipeline costs under 2 % wall-clock. Both bounds are
//! asserted, not just reported, so a regression fails `cargo bench`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use fgbs_core::{profile_reference, reduce_cached, KChoice, MicroCache, PipelineConfig};
use fgbs_suites::{nr_suite, Class};

/// Nanoseconds per span over `n` open/close cycles (with one u64 arg,
/// the common instrumentation shape).
fn ns_per_span(n: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..n {
        let mut s = fgbs_trace::span("bench.span");
        s.arg_u64("i", i);
    }
    t0.elapsed().as_nanos() as f64 / n as f64
}

/// Median wall-clock of `runs` NR Test-class profile+reduce pipelines.
fn median_pipeline_ns(runs: usize) -> f64 {
    let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(10).collect();
    let cfg = PipelineConfig::fast().with_k(KChoice::Fixed(4)).with_threads(2);
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let suite = profile_reference(&apps, &cfg);
            let reduced = reduce_cached(&suite, &cfg, &MicroCache::new());
            assert!(reduced.n_representatives() >= 1);
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

fn bench_span_overhead(c: &mut Criterion) {
    // A bounded buffer keeps the 1M-span measurement loops from
    // accumulating memory; eviction cost is part of the honest price.
    fgbs_trace::set_capacity(8192);

    fgbs_trace::set_enabled(true);
    ns_per_span(100_000); // warm up the thread shard
    let enabled_ns = ns_per_span(1_000_000);
    fgbs_trace::set_enabled(false);
    let disabled_ns = ns_per_span(1_000_000);
    let _ = fgbs_trace::drain();
    fgbs_trace::set_capacity(0);

    println!("span overhead: enabled {enabled_ns:.1} ns, disabled {disabled_ns:.1} ns");
    assert!(
        enabled_ns < 100.0,
        "an enabled span must cost < 100 ns, measured {enabled_ns:.1} ns"
    );
    assert!(
        disabled_ns < enabled_ns,
        "a disabled span must be cheaper than an enabled one"
    );

    c.bench_function("trace/span_enabled", |b| {
        fgbs_trace::set_enabled(true);
        fgbs_trace::set_capacity(8192);
        b.iter(|| {
            let mut s = fgbs_trace::span("bench.criterion");
            s.arg_u64("i", 1);
        });
        fgbs_trace::set_enabled(false);
        let _ = fgbs_trace::drain();
        fgbs_trace::set_capacity(0);
    });
}

fn bench_pipeline_regression(c: &mut Criterion) {
    const RUNS: usize = 7;
    // Interleave by measuring untraced → traced → untraced so drift
    // (cache warmth, frequency scaling) biases against neither side.
    let cold = median_pipeline_ns(RUNS);
    fgbs_trace::set_enabled(true);
    let traced = median_pipeline_ns(RUNS);
    fgbs_trace::set_enabled(false);
    let _ = fgbs_trace::drain();
    let untraced = median_pipeline_ns(RUNS).min(cold);

    let ratio = traced / untraced;
    println!(
        "pipeline: untraced {:.2} ms, traced {:.2} ms, ratio {ratio:.4}",
        untraced / 1e6,
        traced / 1e6
    );
    assert!(
        ratio <= 1.02,
        "tracing must cost <= 2 % of pipeline wall-clock, measured {:.2} %",
        (ratio - 1.0) * 100.0
    );

    c.bench_function("trace/pipeline_traced", |b| {
        let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(6).collect();
        let cfg = PipelineConfig::fast().with_k(KChoice::Fixed(3)).with_threads(2);
        fgbs_trace::set_enabled(true);
        b.iter(|| {
            let suite = profile_reference(&apps, &cfg);
            reduce_cached(&suite, &cfg, &MicroCache::new())
        });
        fgbs_trace::set_enabled(false);
        let _ = fgbs_trace::drain();
    });
}

criterion_group!(benches, bench_span_overhead, bench_pipeline_regression);
criterion_main!(benches);

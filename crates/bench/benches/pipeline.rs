//! Criterion benches of the pipeline stages: simulation throughput,
//! feature extraction, clustering, GA, prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use fgbs_analysis::{dynamic_features, static_features};
use fgbs_clustering::{linkage, normalize, DistanceMatrix, Linkage};
use fgbs_core::{
    predict_with_runs, profile_reference, profile_target, reduce_cached, KChoice, MicroCache,
    PipelineConfig,
};
use fgbs_genetic::{minimize, BitGenome, GaConfig};
use fgbs_isa::{compile, BindingBuilder, CodeletBuilder, CompileMode, Precision};
use fgbs_machine::{Arch, Machine, PARK_SCALE};
use fgbs_suites::{nr_suite, Class};

fn bench_machine_simulation(c: &mut Criterion) {
    let arch = Arch::nehalem().scaled(PARK_SCALE);
    let codelet = CodeletBuilder::new("triad", "bench")
        .array("a", Precision::F64)
        .array("b", Precision::F64)
        .array("c", Precision::F64)
        .param_loop("n")
        .store("c", &[1], |bd| bd.load("a", &[1]) * 2.0 + bd.load("b", &[1]))
        .build();
    let kernel = compile(&codelet, &arch.target(), CompileMode::InApp);
    let n = 16_384u64;
    let binding = BindingBuilder::new(0)
        .vector(n, 8)
        .vector(n, 8)
        .vector(n, 8)
        .param(n)
        .build_for(&codelet);
    let mut machine = Machine::new(arch);
    c.bench_function("machine/triad_16k_invocation", |b| {
        b.iter(|| machine.run(&kernel, &binding))
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let arch = Arch::nehalem().scaled(PARK_SCALE);
    let codelet = CodeletBuilder::new("dot", "bench")
        .array("x", Precision::F64)
        .array("y", Precision::F64)
        .param_loop("n")
        .update_acc("s", fgbs_isa::BinOp::Add, |b| {
            b.load("x", &[1]) * b.load("y", &[1])
        })
        .build();
    let kernel = compile(&codelet, &arch.target(), CompileMode::InApp);
    c.bench_function("analysis/static_features", |b| {
        b.iter(|| static_features(&kernel, &arch))
    });
    let n = 8192u64;
    let binding = BindingBuilder::new(0)
        .vector(n, 8)
        .vector(n, 8)
        .param(n)
        .build_for(&codelet);
    let mut machine = Machine::new(arch.clone());
    let meas = machine.run(&kernel, &binding);
    c.bench_function("analysis/dynamic_features", |b| {
        b.iter(|| dynamic_features(&meas.counters, &arch, meas.cycles))
    });
}

fn bench_clustering(c: &mut Criterion) {
    // A 67 x 14 observation matrix, like the NAS clustering.
    let data = fgbs_matrix::Matrix::from_rows(
        &(0..67)
            .map(|i| (0..14).map(|j| ((i * 31 + j * 17) % 23) as f64).collect())
            .collect::<Vec<Vec<f64>>>(),
    );
    let norm = normalize(&data);
    c.bench_function("clustering/ward_67x14", |b| {
        b.iter(|| {
            let d = DistanceMatrix::euclidean(&norm);
            linkage(&d, Linkage::Ward)
        })
    });
}

fn bench_ga(c: &mut Criterion) {
    let cfg = GaConfig {
        genome_len: 76,
        population: 50,
        generations: 10,
        ..GaConfig::default()
    };
    c.bench_function("genetic/ga_50x10_onemax", |b| {
        b.iter(|| minimize(&cfg, |g: &BitGenome| (76 - g.count_ones()) as f64))
    });
}

fn bench_pipeline_steps(c: &mut Criterion) {
    let cfg = PipelineConfig::fast().with_k(KChoice::Fixed(4));
    let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(8).collect();
    c.bench_function("pipeline/profile_reference_8xNR", |b| {
        b.iter(|| profile_reference(&apps, &cfg))
    });

    let suite = profile_reference(&apps, &cfg);
    let cache = MicroCache::new();
    c.bench_function("pipeline/reduce_8xNR", |b| {
        b.iter(|| reduce_cached(&suite, &cfg, &cache))
    });

    let reduced = reduce_cached(&suite, &cfg, &cache);
    let atom = Arch::atom().scaled(PARK_SCALE);
    let runs = profile_target(&suite, &atom, &cfg);
    c.bench_function("pipeline/predict_8xNR_atom", |b| {
        b.iter(|| predict_with_runs(&suite, &reduced, &atom, &runs, &cache, &cfg))
    });
}

criterion_group!(
    benches,
    bench_machine_simulation,
    bench_feature_extraction,
    bench_clustering,
    bench_ga,
    bench_pipeline_steps
);
criterion_main!(benches);

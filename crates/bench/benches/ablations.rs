//! Runtime ablations of the design choices DESIGN.md calls out:
//! linkage criterion, feature-set width, and K policy. (Their *quality*
//! impact is reported by the `exp_ablations` binary; these benches track
//! the runtime cost of each choice.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgbs_analysis::FeatureMask;
use fgbs_clustering::{linkage, normalize, DistanceMatrix, Linkage};
use fgbs_core::{profile_reference, reduce_cached, KChoice, MicroCache, PipelineConfig};
use fgbs_suites::{nr_suite, Class};

fn bench_linkages(c: &mut Criterion) {
    let data = fgbs_matrix::Matrix::from_rows(
        &(0..67)
            .map(|i| (0..14).map(|j| ((i * 29 + j * 13) % 19) as f64).collect())
            .collect::<Vec<Vec<f64>>>(),
    );
    let norm = normalize(&data);
    let d = DistanceMatrix::euclidean(&norm);
    let mut g = c.benchmark_group("ablation/linkage");
    for m in [
        Linkage::Ward,
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m:?}")), &m, |b, &m| {
            b.iter(|| linkage(&d, m))
        });
    }
    g.finish();
}

fn bench_feature_width(c: &mut Criterion) {
    let cfg = PipelineConfig::fast().with_k(KChoice::Fixed(4));
    let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(10).collect();
    let suite = profile_reference(&apps, &cfg);
    let cache = MicroCache::new();
    // Warm the wellness cache so the bench isolates clustering cost.
    let _ = reduce_cached(&suite, &cfg, &cache);

    let mut g = c.benchmark_group("ablation/features");
    for (label, mask) in [
        ("table2_14", FeatureMask::from_ids(&fgbs_analysis::table2_features())),
        ("all_76", FeatureMask::all()),
    ] {
        let fcfg = cfg.clone().with_features(mask);
        g.bench_function(label, |b| b.iter(|| reduce_cached(&suite, &fcfg, &cache)));
    }
    g.finish();
}

fn bench_k_policy(c: &mut Criterion) {
    let cfg = PipelineConfig::fast();
    let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(10).collect();
    let suite = profile_reference(&apps, &cfg);
    let cache = MicroCache::new();
    let _ = reduce_cached(&suite, &cfg, &cache);

    let mut g = c.benchmark_group("ablation/k_policy");
    for (label, k) in [
        ("fixed_5", KChoice::Fixed(5)),
        ("elbow_10", KChoice::Elbow { max_k: 10 }),
    ] {
        let kcfg = cfg.clone().with_k(k);
        g.bench_function(label, |b| b.iter(|| reduce_cached(&suite, &kcfg, &cache)));
    }
    g.finish();
}

criterion_group!(benches, bench_linkages, bench_feature_width, bench_k_policy);
criterion_main!(benches);

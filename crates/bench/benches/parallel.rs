//! The shared work pool, measured: GA feature selection and distance-matrix
//! construction, serial vs parallel. The contract under test is twofold —
//! the pooled paths must be *faster* (the acceptance bar is ≥2× GA
//! wall-clock at 8 threads) and *bitwise identical* to the serial paths
//! (checked here outside the timed regions; `tests/properties.rs` holds
//! the exhaustive version).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgbs_analysis::{FeatureMask, N_FEATURES};
use fgbs_clustering::DistanceMatrix;
use fgbs_core::{
    profile_reference, profile_target, reduce_cached, KChoice, MicroCache, PipelineConfig,
};
use fgbs_core::predict_with_runs;
use fgbs_genetic::{minimize, minimize_parallel, BitGenome, FitnessCache, GaConfig};
use fgbs_machine::{Arch, PARK_SCALE};
use fgbs_pool::WorkPool;
use fgbs_suites::{nr_suite, Class};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The NR Test-class GA workload: each genome prices a feature mask by
/// running the full cluster-and-predict pipeline, exactly as
/// `select_features_ga` does.
fn ga_workload() -> (
    GaConfig,
    impl Fn(&BitGenome) -> f64 + Sync,
) {
    let cfg = PipelineConfig::fast().with_k(KChoice::Fixed(4));
    let apps = nr_suite(Class::Test);
    let suite = profile_reference(&apps, &cfg);
    let cache = MicroCache::new();
    let target = Arch::atom().scaled(PARK_SCALE);
    let runs = profile_target(&suite, &target, &cfg);

    // Population sized so each generation is a real batch of pipeline
    // runs — the shape of the paper's pop-1000 GA, scaled to bench time.
    let ga = GaConfig {
        genome_len: N_FEATURES,
        population: 64,
        generations: 3,
        seed: 42,
        ..GaConfig::default()
    };
    let fitness = move |g: &BitGenome| -> f64 {
        if g.count_ones() == 0 {
            return f64::MAX / 2.0;
        }
        let mcfg = cfg
            .clone()
            .with_features(FeatureMask::from_bits(g.bits().to_vec()));
        let reduced = reduce_cached(&suite, &mcfg, &cache);
        let out = predict_with_runs(&suite, &reduced, &target, &runs, &cache, &mcfg);
        let err = out.average_error_pct();
        if err.is_finite() {
            err * reduced.n_representatives() as f64
        } else {
            f64::MAX / 2.0
        }
    };
    (ga, fitness)
}

fn bench_ga(c: &mut Criterion) {
    let (ga, fitness) = ga_workload();

    // Determinism gate: the parallel run must reproduce the serial winner
    // byte for byte before any timing is trusted.
    let serial = minimize(&ga, &fitness);
    for threads in [2, 8] {
        let pool = WorkPool::new(threads);
        let par = minimize_parallel(&ga, &pool, &FitnessCache::new(), &fitness);
        assert_eq!(serial.best, par.best, "best genome differs at {threads} threads");
        assert_eq!(
            serial.best_fitness.to_bits(),
            par.best_fitness.to_bits(),
            "best fitness differs at {threads} threads"
        );
    }

    let mut group = c.benchmark_group("ga_feature_selection");
    group.bench_function("serial", |b| b.iter(|| minimize(&ga, &fitness)));
    for threads in [2usize, 4, 8] {
        let pool = WorkPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("pooled", threads),
            &threads,
            |b, _| {
                // A fresh cache per run: memoisation across runs would
                // flatter the parallel path.
                b.iter(|| minimize_parallel(&ga, &pool, &FitnessCache::new(), &fitness))
            },
        );
    }

    // The memoisation axis: a cache shared across runs makes a repeat run
    // (same seed, e.g. re-running selection with an unchanged config) skip
    // every pipeline evaluation.
    let pool = WorkPool::new(8);
    let warm = FitnessCache::new();
    let _ = minimize_parallel(&ga, &pool, &warm, &fitness);
    group.bench_function("pooled/8+warm-cache", |b| {
        b.iter(|| minimize_parallel(&ga, &pool, &warm, &fitness))
    });
    group.finish();
}

fn bench_distance_matrix(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let data = fgbs_matrix::Matrix::from_rows(
        &(0..600)
            .map(|_| (0..14).map(|_| rng.gen::<f64>()).collect())
            .collect::<Vec<Vec<f64>>>(),
    );

    let serial = DistanceMatrix::euclidean(&data);
    let pooled = DistanceMatrix::euclidean_with(&data, &WorkPool::new(8));
    assert_eq!(serial, pooled, "pooled distance matrix must be bitwise identical");

    let mut group = c.benchmark_group("distance_matrix_600x14");
    group.bench_function("serial", |b| b.iter(|| DistanceMatrix::euclidean(&data)));
    for threads in [2usize, 8] {
        let pool = WorkPool::new(threads);
        group.bench_with_input(BenchmarkId::new("pooled", threads), &threads, |b, _| {
            b.iter(|| DistanceMatrix::euclidean_with(&data, &pool))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ga, bench_distance_matrix);
criterion_main!(benches);

//! Clustering-kernel benches: the flat numeric layer this repo's Step C
//! runs on. Tracks the NN-chain linkage against the O(n³) naive scan it
//! replaced, the blocked distance kernel, and the incremental masked
//! distances of the GA fitness path. (`bench_json` emits the same
//! measurements as machine-readable JSON with the speedup assertions.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgbs_clustering::{linkage, naive_linkage, normalize, DistanceMatrix, Linkage, MaskedDistanceCache};
use fgbs_matrix::{kernel, Matrix};

/// Deterministic synthetic observation matrix: `n` codelets, 14 features
/// of loosely clustered values.
fn observations(n: usize, cols: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..cols)
                .map(|j| {
                    let blob = (i % 7) as f64 * 10.0;
                    blob + ((i * 31 + j * 17) % 23) as f64 / 23.0
                })
                .collect()
        })
        .collect();
    normalize(&Matrix::from_rows(&rows))
}

fn bench_linkage_nn_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering/linkage");
    for n in [64usize, 256] {
        let d = DistanceMatrix::euclidean(&observations(n, 14));
        g.bench_with_input(BenchmarkId::new("nn_chain", n), &d, |b, d| {
            b.iter(|| linkage(d, Linkage::Ward))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &d, |b, d| {
            b.iter(|| naive_linkage(d, Linkage::Ward))
        });
    }
    g.finish();
}

fn bench_distance_kernel(c: &mut Criterion) {
    let data = observations(256, 76);
    let mut g = c.benchmark_group("clustering/kernel");
    g.bench_function("sq_dist_76", |b| {
        let x = data.row(0);
        let y = data.row(128);
        b.iter(|| kernel::sq_dist(x, y))
    });
    g.bench_function("euclidean_256x76", |b| {
        b.iter(|| DistanceMatrix::euclidean(&data))
    });
    g.finish();
}

fn bench_masked_incremental(c: &mut Criterion) {
    let z = observations(128, 76);
    let all: Vec<usize> = (0..64).collect();
    let mut flipped = all.clone();
    flipped.remove(3);
    flipped.push(70);

    let mut g = c.benchmark_group("clustering/masked");
    g.bench_function("scratch_64_of_76", |b| {
        b.iter(|| MaskedDistanceCache::new(z.clone()).distances(&all))
    });
    g.bench_function("patch_2_of_76", |b| {
        // Alternate between two masks two bits apart: every call patches.
        let mut cache = MaskedDistanceCache::new(z.clone());
        let _ = cache.distances(&all);
        let mut turn = false;
        b.iter(|| {
            turn = !turn;
            cache.distances(if turn { &flipped } else { &all })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_linkage_nn_vs_naive, bench_distance_kernel, bench_masked_incremental);
criterion_main!(benches);

//! Shared harness for the experiment binaries.
//!
//! One binary per table/figure of the paper lives in `src/bin/`
//! (`exp_table1` … `exp_fig8`, `exp_casestudy`). They share this crate's
//! [`NasLab`] / [`NrLab`] contexts, which run the expensive common stages
//! once: reference profiling (Steps A+B), GA feature training on the
//! Numerical Recipes suite, ground-truth target runs, and the
//! microbenchmark measurement cache.
//!
//! Every binary accepts:
//!
//! * `--class test|a|b` — dataset class (default `a`; the paper-scale runs
//!   use `b`),
//! * `--quick` — shrink expensive searches (GA population, random-
//!   clustering samples),
//! * `--paper-features` — cluster on the paper's Table 2 feature list
//!   instead of the locally GA-trained set.

pub mod barometer;

use fgbs_analysis::{table2_features, FeatureMask};
use fgbs_core::{
    profile_reference, profile_target, select_features_ga, MicroCache, PipelineConfig,
    ProfiledSuite,
};
use fgbs_extract::AppRun;
use fgbs_genetic::GaConfig;
use fgbs_machine::{Arch, PARK_SCALE};
use fgbs_suites::{nas_suite, nr_suite, Class};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Dataset class.
    pub class: Class,
    /// Shrink expensive searches.
    pub quick: bool,
    /// Use the paper's Table 2 feature list instead of training a set.
    pub paper_features: bool,
}

impl Options {
    /// Parse `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments.
    pub fn from_args() -> Options {
        let mut o = Options {
            class: Class::A,
            quick: false,
            paper_features: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--class" => {
                    let v = args.next().unwrap_or_default();
                    o.class = match v.to_ascii_lowercase().as_str() {
                        "test" => Class::Test,
                        "a" => Class::A,
                        "b" => Class::B,
                        other => panic!("unknown class `{other}` (test|a|b)"),
                    };
                }
                "--quick" => o.quick = true,
                "--paper-features" => o.paper_features = true,
                "--help" | "-h" => {
                    println!("usage: [--class test|a|b] [--quick] [--paper-features]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument `{other}`"),
            }
        }
        o
    }
}

/// The feature mask the experiments cluster with: by default a set trained
/// with the paper's GA recipe on the NR suite (Atom + Sandy Bridge,
/// fitness `max(err) × K`), falling back to the paper's own Table 2 list
/// with `--paper-features`.
pub fn experiment_features(opts: &Options, cfg: &PipelineConfig) -> FeatureMask {
    if opts.paper_features {
        return FeatureMask::from_ids(&table2_features());
    }
    let nr = profile_reference(&nr_suite(opts.class), cfg);
    let train = vec![
        Arch::atom().scaled(PARK_SCALE),
        Arch::sandy_bridge().scaled(PARK_SCALE),
    ];
    let ga = if opts.quick {
        GaConfig {
            population: 40,
            generations: 12,
            seed: 1,
            ..GaConfig::default()
        }
    } else {
        GaConfig {
            population: 80,
            generations: 30,
            seed: 1,
            ..GaConfig::default()
        }
    };
    select_features_ga(&nr, &train, &ga, cfg).mask
}

/// Shared context for NAS experiments.
#[derive(Debug)]
pub struct NasLab {
    /// Options the lab was built with.
    pub opts: Options,
    /// Pipeline configuration (clustering features already set).
    pub cfg: PipelineConfig,
    /// The profiled NAS suite (Steps A+B done).
    pub suite: ProfiledSuite,
    /// Shared microbenchmark measurement cache.
    pub cache: MicroCache,
    /// The three scaled targets.
    pub targets: Vec<Arch>,
    /// Ground-truth full runs, aligned with `targets`.
    pub runs: Vec<Vec<AppRun>>,
}

impl NasLab {
    /// Build the lab: profile NAS on the reference, train features, run
    /// the ground truth on every target.
    pub fn new(opts: Options) -> NasLab {
        let base = PipelineConfig::default();
        let features = experiment_features(&opts, &base);
        let cfg = base.with_features(features);
        eprintln!("[lab] profiling NAS (class {:?}) on {}…", opts.class, cfg.reference.name);
        let suite = profile_reference(&nas_suite(opts.class), &cfg);
        let targets = Arch::targets_scaled();
        let runs = targets
            .iter()
            .map(|t| {
                eprintln!("[lab] ground-truth run on {}…", t.name);
                profile_target(&suite, t, &cfg)
            })
            .collect();
        NasLab {
            opts,
            cfg,
            suite,
            cache: MicroCache::new(),
            targets,
            runs,
        }
    }
}

/// Shared context for NR experiments.
#[derive(Debug)]
pub struct NrLab {
    /// Options the lab was built with.
    pub opts: Options,
    /// Pipeline configuration.
    pub cfg: PipelineConfig,
    /// The profiled NR suite.
    pub suite: ProfiledSuite,
    /// Shared microbenchmark measurement cache.
    pub cache: MicroCache,
    /// Atom and Sandy Bridge (the NR evaluation targets).
    pub targets: Vec<Arch>,
    /// Ground-truth runs, aligned with `targets`.
    pub runs: Vec<Vec<AppRun>>,
}

impl NrLab {
    /// Build the NR lab (profiles the 28 codes, runs Atom + Sandy Bridge
    /// ground truth).
    pub fn new(opts: Options) -> NrLab {
        let base = PipelineConfig::default();
        let features = experiment_features(&opts, &base);
        let cfg = base.with_features(features);
        eprintln!("[lab] profiling NR (class {:?})…", opts.class);
        let suite = profile_reference(&nr_suite(opts.class), &cfg);
        let targets = vec![
            Arch::atom().scaled(PARK_SCALE),
            Arch::sandy_bridge().scaled(PARK_SCALE),
        ];
        let runs = targets
            .iter()
            .map(|t| profile_target(&suite, t, &cfg))
            .collect();
        NrLab {
            opts,
            cfg,
            suite,
            cache: MicroCache::new(),
            targets,
            runs,
        }
    }
}

/// Render a fixed-width text table. When the `FGBS_CSV_DIR` environment
/// variable is set, the table is additionally written as a CSV file named
/// after a slug of the title (for plotting pipelines).
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if let Ok(dir) = std::env::var("FGBS_CSV_DIR") {
        if let Err(e) = write_csv(&dir, title, headers, rows) {
            eprintln!("[warn] could not write CSV for `{title}`: {e}");
        }
    }
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), ncols, "row width mismatch in `{title}`");
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

fn write_csv(
    dir: &str,
    title: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write;
    let slug: String = title
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(format!("{dir}/{slug}.csv"))?;
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
    )?;
    for r in rows {
        writeln!(
            f,
            "{}",
            r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Format seconds in engineering units.
pub fn secs(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2} s")
    } else if v >= 1e-3 {
        format!("{:.2} ms", v * 1e3)
    } else {
        format!("{:.1} us", v * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(secs(2.5), "2.50 s");
        assert_eq!(secs(2.5e-3), "2.50 ms");
        assert_eq!(secs(2.5e-5), "25.0 us");
    }

    #[test]
    fn render_table_smoke() {
        render_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
    }

    #[test]
    fn paper_features_option_uses_table2() {
        let opts = Options {
            class: Class::Test,
            quick: true,
            paper_features: true,
        };
        let m = experiment_features(&opts, &PipelineConfig::fast());
        assert_eq!(m.len(), 14);
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_export_writes_slugged_file() {
        let dir = std::env::temp_dir().join("fgbs_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("FGBS_CSV_DIR", &dir);
        render_table(
            "Figure 99 — smoke, test",
            &["a", "b"],
            &[vec!["1,5".into(), "x\"y".into()]],
        );
        std::env::remove_var("FGBS_CSV_DIR");
        let path = dir.join("figure_99_smoke_test.csv");
        let body = std::fs::read_to_string(&path).expect("csv written");
        assert!(body.starts_with("a,b\n"));
        assert!(body.contains("\"1,5\""));
        assert!(body.contains("\"x\"\"y\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

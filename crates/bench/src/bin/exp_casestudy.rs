//! §4.4 case study — "Capturing architecture change".
//!
//! Cluster A (LU/erhs + FT/appft): triple-nested loops dominated by
//! divides and exponentials — compute bound, faster on Core 2 thanks to
//! its higher clock. Cluster B (BT/rhs + SP/rhs): three-point stencils
//! whose working set fits the reference L3 but not Core 2's L2 — memory
//! bound, slower on Core 2 despite the clock. The features must separate
//! the two groups and the clustering must predict both correctly.

use fgbs_analysis::feature_id;
use fgbs_bench::{f, render_table, NasLab, Options};
use fgbs_core::reduce_cached;

const CLUSTER_A: [&str; 2] = ["lu/erhs.f:49-57", "ft/appft.f:45-47"];
const CLUSTER_B: [&str; 2] = ["bt/rhs.f:266-311", "sp/rhs.f:275-320"];

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    let c2i = lab
        .targets
        .iter()
        .position(|t| t.name == "Core 2")
        .expect("Core 2 is a target");
    let c2 = &lab.targets[c2i];

    let ipc = feature_id("Estimated IPC assuming only L1 hits");
    let membw = feature_id("Memory bandwidth in MB.s-1");
    let l2bw = feature_id("L2 bandwidth in MB.s-1");

    let mut rows = Vec::new();
    for (label, names) in [("A (compute)", &CLUSTER_A), ("B (memory)", &CLUSTER_B)] {
        for name in *names {
            let i = lab.suite.index_of(name).expect("case-study codelet");
            let info = &lab.suite.codelets[i];
            let tref = lab.cfg.reference.seconds(info.tref_cycles);
            let run = &lab.runs[c2i][info.app];
            let ttar = c2.seconds(run.profiles[info.local].mean_cycles());
            let fv = lab.suite.features.row(i);
            rows.push(vec![
                label.to_string(),
                name.to_string(),
                f(tref / ttar, 2),
                f(fv.get(ipc), 2),
                f(fv.get(membw), 0),
                f(fv.get(l2bw), 0),
            ]);
        }
    }
    render_table(
        "Case study — Core 2 speedups and separating features",
        &[
            "Cluster",
            "Codelet",
            "s(Core 2)",
            "static IPC",
            "mem BW MB/s",
            "L2 BW MB/s",
        ],
        &rows,
    );

    // Do the twins actually share clusters?
    let reduced = reduce_cached(&lab.suite, &lab.cfg, &lab.cache);
    for (label, names) in [("A", &CLUSTER_A), ("B", &CLUSTER_B)] {
        let cl: Vec<_> = names
            .iter()
            .map(|n| reduced.assignment[lab.suite.index_of(n).unwrap()])
            .collect();
        println!(
            "cluster {label}: twins in clusters {:?} ({})",
            cl,
            if cl[0] == cl[1] { "shared, as in the paper" } else { "split" }
        );
    }
    println!("\nPaper: cluster A 1.37x faster on Core 2, cluster B 1.34x slower (s = 0.75).");
}

//! Table 2 — genetic-algorithm feature selection on Numerical Recipes.
//!
//! Trains a feature mask on the 28 NR codelets against Atom and Sandy
//! Bridge with the paper's fitness `max(err_Atom, err_SB) × K`, then
//! prints the winning set next to the paper's published Table 2 list.
//! `--quick` shrinks the GA; without it the search uses a sizeable
//! population (the paper used population 1000 × 100 generations in R).

use fgbs_analysis::{catalog, table2_features};
use fgbs_bench::{render_table, Options};
use fgbs_core::{profile_reference, select_features_ga, PipelineConfig};
use fgbs_genetic::GaConfig;
use fgbs_machine::{Arch, PARK_SCALE};
use fgbs_suites::nr_suite;

fn main() {
    let opts = Options::from_args();
    let cfg = PipelineConfig::default();
    eprintln!("[exp] profiling NR…");
    let nr = profile_reference(&nr_suite(opts.class), &cfg);
    let train = vec![
        Arch::atom().scaled(PARK_SCALE),
        Arch::sandy_bridge().scaled(PARK_SCALE),
    ];
    let ga = if opts.quick {
        GaConfig {
            population: 40,
            generations: 12,
            seed: 1,
            ..GaConfig::default()
        }
    } else {
        GaConfig {
            population: 200,
            generations: 60,
            seed: 1,
            ..GaConfig::default()
        }
    };
    eprintln!(
        "[exp] running GA (population {}, {} generations)…",
        ga.population, ga.generations
    );
    let sel = select_features_ga(&nr, &train, &ga, &cfg);

    let cat = catalog();
    let paper: Vec<usize> = table2_features();
    let rows: Vec<Vec<String>> = sel
        .feature_ids
        .iter()
        .map(|&id| {
            vec![
                cat[id].name.to_string(),
                format!("{:?}", cat[id].kind),
                if paper.contains(&id) { "also in paper's set" } else { "" }.to_string(),
            ]
        })
        .collect();
    render_table(
        "Table 2 — GA-selected feature set (this reproduction)",
        &["Feature", "Kind", "Note"],
        &rows,
    );
    let overlap = sel.feature_ids.iter().filter(|i| paper.contains(i)).count();
    println!(
        "\nselected {} features ({} overlap with the paper's 14), fitness {:.2}, elbow K {}",
        sel.feature_ids.len(),
        overlap,
        sel.fitness,
        sel.k
    );
    println!(
        "GA: {} distinct evaluations, best fitness per generation: {:?}",
        sel.evaluations,
        sel.history
            .iter()
            .step_by((sel.history.len() / 10).max(1))
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    let paper_rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&id| vec![cat[id].name.to_string(), format!("{:?}", cat[id].kind)])
        .collect();
    render_table(
        "Table 2 — the paper's published feature set, for reference",
        &["Feature", "Kind"],
        &paper_rows,
    );
}

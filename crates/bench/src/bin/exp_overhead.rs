//! §5 — "Overhead of reducing the benchmark suite".
//!
//! The paper: profiling the benchmarks on the reference and extracting the
//! representatives is costly (380 minutes for the 18 NAS microbenchmarks),
//! so "if the user is only interested in a single architecture, our method
//! does not pay off … when comparing many target architectures the
//! overhead is quickly amortized".
//!
//! This binary quantifies the same trade-off in simulated benchmarking
//! time: the one-off cost of Steps A–D (reference profiling + wellness
//! microbenchmark runs on the reference), the per-target cost of the full
//! suite vs the reduced suite, and the number of candidate machines at
//! which the method breaks even.

use fgbs_bench::{f, render_table, NasLab, Options};
use fgbs_core::{predict_with_runs, reduce_cached, reduction_factor};

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    let reduced = reduce_cached(&lab.suite, &lab.cfg, &lab.cache);

    // One-off cost (simulated seconds on the reference machine):
    // Step A+B — the instrumented full reference run;
    // Step D   — standalone wellness runs of every detected codelet.
    let profiling: f64 = lab.suite.runs.iter().map(|r| r.total_seconds).sum();
    let wellness_cost: f64 = (0..lab.suite.len())
        .map(|i| {
            lab.cache
                .measure(
                    i,
                    &lab.suite.codelets[i].micro,
                    &lab.cfg.reference,
                    lab.cfg.noise_seed,
                    lab.cfg.micro_min_seconds,
                    lab.cfg.micro_min_invocations,
                )
                .total_seconds
        })
        .sum();
    let one_off = profiling + wellness_cost;

    let mut rows = Vec::new();
    let mut full_avg = 0.0;
    let mut reduced_avg = 0.0;
    for (ti, target) in lab.targets.iter().enumerate() {
        let out =
            predict_with_runs(&lab.suite, &reduced, target, &lab.runs[ti], &lab.cache, &lab.cfg);
        let red = reduction_factor(&lab.suite, &reduced, &out, target, &lab.cache, &lab.cfg);
        full_avg += red.full_seconds;
        reduced_avg += red.reduced_seconds;
        rows.push(vec![
            target.name.clone(),
            format!("{:.3} s", red.full_seconds),
            format!("{:.4} s", red.reduced_seconds),
            f(red.total, 1),
        ]);
    }
    full_avg /= lab.targets.len() as f64;
    reduced_avg /= lab.targets.len() as f64;

    render_table(
        "§5 — per-target benchmarking cost (simulated time)",
        &["Target", "Full suite", "Reduced suite", "Saving x"],
        &rows,
    );

    println!(
        "\none-off reduction cost on the reference: {:.3} s \
(profiling {:.3} s + wellness microbenchmarks {:.3} s)",
        one_off, profiling, wellness_cost
    );

    // Break-even: one_off + n*reduced <= n*full.
    let saving_per_target = full_avg - reduced_avg;
    let breakeven = (one_off / saving_per_target).ceil().max(1.0) as u64;
    println!(
        "average saving per target: {:.3} s -> in simulated time the method pays off \
from {} target machine(s).",
        saving_per_target, breakeven
    );
    println!(
        "\nCaveat: the paper's one-off cost (380 minutes for 18 NAS microbenchmarks) is\n\
dominated by the Codelet Finder extraction *tooling* — capturing and writing memory\n\
dumps — which has no simulated-time analogue here. With a tooling cost of, say, one\n\
full-suite run per extracted representative, break-even moves to {} target(s):\n\
still amortized quickly when comparing several machines, exactly the paper's point.",
        (((reduced.n_representatives() as f64 * full_avg) + one_off) / saving_per_target)
            .ceil()
            .max(1.0) as u64
    );
}

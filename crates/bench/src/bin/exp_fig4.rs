//! Figure 4 — predicted vs real per-codelet execution times on Sandy
//! Bridge, grouped by NAS application, at the elbow cluster count.

use fgbs_bench::{render_table, secs, NasLab, Options};
use fgbs_core::predict_with_runs;
use fgbs_core::reduce_cached;

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    let reduced = reduce_cached(&lab.suite, &lab.cfg, &lab.cache);
    let ti = lab
        .targets
        .iter()
        .position(|t| t.name == "Sandy Bridge")
        .expect("SB is a target");
    let sb = &lab.targets[ti];
    let out = predict_with_runs(&lab.suite, &reduced, sb, &lab.runs[ti], &lab.cache, &lab.cfg);

    for (ai, app) in lab.suite.apps.iter().enumerate() {
        let rows: Vec<Vec<String>> = out
            .predictions
            .iter()
            .enumerate()
            .filter(|(i, _)| lab.suite.codelets[*i].app == ai)
            .map(|(i, p)| {
                vec![
                    lab.suite.codelets[i].name.clone(),
                    secs(p.ref_seconds),
                    secs(p.real_seconds),
                    secs(p.predicted_seconds.unwrap_or(f64::NAN)),
                    format!("{:.1}", p.error_pct.unwrap_or(f64::NAN)),
                ]
            })
            .collect();
        render_table(
            &format!("Figure 4 — {} codelets on Sandy Bridge (K = {})", app.name, reduced.k_requested),
            &["Codelet", "Reference", "SB real", "SB predicted", "err %"],
            &rows,
        );
    }
    println!(
        "\nOverall median error on Sandy Bridge: {:.1} % (paper: 5.8 %).",
        out.median_error_pct()
    );

    // The paper attributes the residual error to short-lived codelets,
    // "more affected by measurement errors such as instrumentation
    // overhead". Split the population at the median invocation length.
    let mut lengths: Vec<f64> = out.predictions.iter().map(|p| p.ref_seconds).collect();
    lengths.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cut = lengths[lengths.len() / 2];
    let median_err = |short: bool| -> f64 {
        let mut errs: Vec<f64> = out
            .predictions
            .iter()
            .filter(|p| (p.ref_seconds < cut) == short)
            .filter_map(|p| p.error_pct)
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if errs.is_empty() {
            f64::NAN
        } else {
            errs[errs.len() / 2]
        }
    };
    println!(
        "Short-lived codelets (< {:.0} us/invocation): median {:.1} %; longer: {:.1} % — \
the paper's instrumentation-overhead effect.",
        cut * 1e6,
        median_err(true),
        median_err(false)
    );
}

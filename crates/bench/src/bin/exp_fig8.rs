//! Figure 8 — sharing representatives across applications vs
//! per-application subsetting.
//!
//! Per-application subsetting (SimPoint-style: representatives cannot be
//! shared between programs) is run by distributing the representative
//! budget evenly; applications whose codelets are all ill-behaved (MG)
//! cannot be predicted at all and are excluded, as in the paper.

use fgbs_bench::{f, render_table, NasLab, Options};
use fgbs_core::{per_app_subsetting, predict_with_runs, reduce_cached, KChoice};

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    let n_apps = lab.suite.apps.len();

    for (ti, target) in lab.targets.iter().enumerate() {
        eprintln!("[exp] per-application subsetting on {}…", target.name);
        let per_app = per_app_subsetting(
            &lab.suite.apps,
            target,
            3,
            &lab.cfg,
        );
        let mut rows = Vec::new();
        for pt in &per_app {
            // Matched-budget cross-application subsetting.
            let k = (pt.reps_per_app * n_apps).min(lab.suite.len());
            let cfg = lab.cfg.clone().with_k(KChoice::Fixed(k));
            let reduced = reduce_cached(&lab.suite, &cfg, &lab.cache);
            let across =
                predict_with_runs(&lab.suite, &reduced, target, &lab.runs[ti], &lab.cache, &cfg)
                    .median_error_pct();
            rows.push(vec![
                pt.reps_per_app.to_string(),
                pt.total_representatives.to_string(),
                f(pt.median_error_pct, 1),
                f(across, 1),
                pt.excluded_apps.join(","),
            ]);
        }
        render_table(
            &format!("Figure 8 — {}", target.name),
            &[
                "reps/app",
                "total reps",
                "per-app err %",
                "across-apps err %",
                "unpredictable apps",
            ],
            &rows,
        );
    }
    println!("\nPaper: cross-application subsetting reaches low errors with fewer");
    println!("representatives, and MG is unpredictable per-app (all codelets ill-behaved).");
}

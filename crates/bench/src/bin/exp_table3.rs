//! Table 3 — the NR clustering at K = 14.
//!
//! For every Numerical Recipes codelet: its cluster, computation pattern,
//! stride vocabulary, vectorization ratio and measured Atom speedup; the
//! selected representative of each cluster is wrapped in angle brackets,
//! as in the paper.

use fgbs_bench::{f, render_table, NrLab, Options};
use fgbs_core::{predict_with_runs, reduce_cached, KChoice};
use fgbs_isa::{compile, CompileMode};

fn main() {
    let opts = Options::from_args();
    let lab = NrLab::new(opts);
    let cfg = lab.cfg.clone().with_k(KChoice::Fixed(14));
    let reduced = reduce_cached(&lab.suite, &cfg, &lab.cache);
    // Atom is the first NR target; measure reps there for the speedups.
    let atom = &lab.targets[0];
    let out = predict_with_runs(&lab.suite, &reduced, atom, &lab.runs[0], &lab.cache, &cfg);

    // Rows ordered by cluster then name, mirroring the dendrogram listing.
    let mut order: Vec<usize> = (0..lab.suite.len()).collect();
    order.sort_by_key(|&i| (reduced.assignment[i], i));

    let rows: Vec<Vec<String>> = order
        .iter()
        .map(|&i| {
            let info = &lab.suite.codelets[i];
            let app = &lab.suite.apps[info.app];
            let codelet = &app.codelets[info.local];
            let kernel = compile(codelet, &cfg.reference.target(), CompileMode::InApp);
            let p = &out.predictions[i];
            let speedup = p.ref_seconds / p.real_seconds;
            let s = if p.is_representative {
                format!("<{}>", f(speedup, 2))
            } else {
                f(speedup, 2)
            };
            vec![
                reduced.assignment[i]
                    .map(|c| (c + 1).to_string())
                    .unwrap_or_else(|| "-".into()),
                codelet.name.clone(),
                codelet.pattern.clone(),
                codelet.stride_summary(),
                format!("{:.0}", 100.0 * kernel.vector_ratio_fp()),
                s,
            ]
        })
        .collect();

    render_table(
        "Table 3 — NR clustering (K = 14) with Atom speedups",
        &["C", "Codelet", "Computation Pattern", "Stride", "Vec. %", "s(Atom)"],
        &rows,
    );
    println!(
        "\n{} clusters survived selection; representatives marked <>. Paper: 14 clusters over 28 codelets.",
        reduced.n_representatives()
    );

    // The dendrogram of the hierarchical clustering (Table 3's left edge).
    let labels: Vec<String> = lab
        .suite
        .codelets
        .iter()
        .map(|c| c.name.split('/').next().unwrap_or(&c.name).to_string())
        .collect();
    println!("\n== Dendrogram (Ward; '+' marks a merge, height grows left) ==");
    print!(
        "{}",
        fgbs_clustering::render_dendrogram(&reduced.dendrogram, &labels, 40)
    );
}

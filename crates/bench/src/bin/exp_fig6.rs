//! Figure 6 — geometric-mean speedup per architecture, real vs predicted.
//! This is the system-selection headline: the reduced suite must rank the
//! candidate machines like the full suite does.

use fgbs_bench::{f, render_table, NasLab, Options};
use fgbs_core::{aggregate_apps, geometric_mean_speedup, predict_with_runs, reduce_cached};

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    for k in [None, Some(18)] {
        let cfg = match k {
            None => lab.cfg.clone(),
            Some(k) => lab.cfg.clone().with_k(fgbs_core::KChoice::Fixed(k)),
        };
        let reduced = reduce_cached(&lab.suite, &cfg, &lab.cache);
        run(&lab, &cfg, &reduced);
    }
    println!("\nPaper: Atom 0.15/0.19, Core 2 0.97/1.00, Sandy Bridge 1.98/1.89.");
}

fn run(lab: &NasLab, cfg: &fgbs_core::PipelineConfig, reduced: &fgbs_core::ReducedSuite) {
    let mut rows = Vec::new();
    let mut ranking_real = Vec::new();
    let mut ranking_pred = Vec::new();
    for (ti, target) in lab.targets.iter().enumerate() {
        let out =
            predict_with_runs(&lab.suite, reduced, target, &lab.runs[ti], &lab.cache, cfg);
        let apps = aggregate_apps(&lab.suite, &out, target, cfg);
        let (real, pred) = geometric_mean_speedup(&apps);
        ranking_real.push((target.name.clone(), real));
        ranking_pred.push((target.name.clone(), pred));
        rows.push(vec![target.name.clone(), f(real, 2), f(pred, 2)]);
    }
    render_table(
        &format!(
            "Figure 6 — geometric-mean speedup vs the Nehalem reference (K = {})",
            reduced.k_requested
        ),
        &["Target", "Real", "Predicted"],
        &rows,
    );
    let best = |v: &mut Vec<(String, f64)>| {
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        v[0].0.clone()
    };
    let br = best(&mut ranking_real);
    let bp = best(&mut ranking_pred);
    println!("System selection: real best = {br}, predicted best = {bp} ({}).",
        if br == bp { "correct" } else { "WRONG" });
}

//! Figure 5 — per-application execution times: reference, target real,
//! target predicted, for every NAS application on the three targets.

use fgbs_bench::{render_table, secs, NasLab, Options};
use fgbs_core::{aggregate_apps, predict_with_runs, reduce_cached};

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    for k in [None, Some(18)] {
        let cfg = match k {
            None => lab.cfg.clone(),
            Some(k) => lab.cfg.clone().with_k(fgbs_core::KChoice::Fixed(k)),
        };
        let reduced = reduce_cached(&lab.suite, &cfg, &lab.cache);
        run(&lab, &cfg, &reduced);
    }
    println!("\nPaper: all apps slower on Atom (CG mispredicted by the cache-state anomaly),");
    println!("all faster on Sandy Bridge, and mixed on Core 2 (BT/FT faster, LU slower).");
}

fn run(lab: &NasLab, cfg: &fgbs_core::PipelineConfig, reduced: &fgbs_core::ReducedSuite) {
    for (ti, target) in lab.targets.iter().enumerate() {
        let out =
            predict_with_runs(&lab.suite, reduced, target, &lab.runs[ti], &lab.cache, cfg);
        let apps = aggregate_apps(&lab.suite, &out, target, cfg);
        let rows: Vec<Vec<String>> = apps
            .iter()
            .map(|a| {
                vec![
                    a.app.clone(),
                    secs(a.ref_seconds),
                    secs(a.real_seconds),
                    a.predicted_seconds.map(secs).unwrap_or_else(|| "-".into()),
                    a.error_pct()
                        .map(|e| format!("{e:.1}"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        render_table(
            &format!(
                "Figure 5 — application times on {} (K = {})",
                target.name, reduced.k_requested
            ),
            &["App", "Reference", "Real", "Predicted", "err %"],
            &rows,
        );
    }
}

//! Quality ablations of the design choices DESIGN.md calls out.
//!
//! 1. Linkage criterion (Ward vs single/complete/average).
//! 2. Clustering features (GA-trained vs the paper's Table 2 list vs all
//!    76 vs the architecture-independent extension of §5).
//! 3. Representative policy (centroid-closest vs a random member).
//! 4. Microbenchmark estimator (median vs mean of the invocations).
//! 5. K policy (elbow vs the paper's K = 18).
//!
//! Each row reports the median per-codelet error averaged over the three
//! targets, at a matched cluster count.

use fgbs_analysis::{archind_features, table2_features, FeatureMask};
use fgbs_bench::{f, render_table, NasLab, Options};
use fgbs_clustering::Linkage;
use fgbs_core::{
    predict_with_runs, reduce_cached, reduce_with_observations, wellness, KChoice, ReducedSuite,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mean_median_error(lab: &NasLab, reduced: &ReducedSuite, cfg: &fgbs_core::PipelineConfig) -> f64 {
    let mut total = 0.0;
    for (ti, target) in lab.targets.iter().enumerate() {
        let out =
            predict_with_runs(&lab.suite, reduced, target, &lab.runs[ti], &lab.cache, cfg);
        total += out.median_error_pct();
    }
    total / lab.targets.len() as f64
}

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    let elbow = reduce_cached(&lab.suite, &lab.cfg, &lab.cache);
    let k = elbow.k_requested;
    let kcfg = lab.cfg.clone().with_k(KChoice::Fixed(k));

    // 1. Linkage criterion.
    let mut rows = Vec::new();
    for linkage in [
        Linkage::Ward,
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
    ] {
        let mut cfg = kcfg.clone();
        cfg.linkage = linkage;
        let reduced = reduce_cached(&lab.suite, &cfg, &lab.cache);
        rows.push(vec![
            format!("{linkage:?}"),
            reduced.n_representatives().to_string(),
            f(mean_median_error(&lab, &reduced, &cfg), 1),
        ]);
    }
    render_table(
        &format!("Ablation 1 — linkage criterion (K = {k})"),
        &["Linkage", "reps", "mean median err %"],
        &rows,
    );

    // 2. Feature sets.
    let mut rows = Vec::new();
    let archind = fgbs_matrix::Matrix::from_rows(
        &lab.suite
            .codelets
            .iter()
            .map(|c| {
                let app = &lab.suite.apps[c.app];
                let binding = app.first_context(c.local).expect("detected codelets run");
                archind_features(&app.codelets[c.local], binding)
            })
            .collect::<Vec<Vec<f64>>>(),
    );
    for (label, reduced) in [
        (
            "GA-trained",
            reduce_cached(&lab.suite, &kcfg, &lab.cache),
        ),
        (
            "paper Table 2",
            reduce_cached(
                &lab.suite,
                &kcfg.clone().with_features(FeatureMask::from_ids(&table2_features())),
                &lab.cache,
            ),
        ),
        (
            "all 76",
            reduce_cached(
                &lab.suite,
                &kcfg.clone().with_features(FeatureMask::all()),
                &lab.cache,
            ),
        ),
        (
            "arch-independent (§5)",
            reduce_with_observations(&lab.suite, &kcfg, &lab.cache, &archind),
        ),
    ] {
        rows.push(vec![
            label.to_string(),
            reduced.n_representatives().to_string(),
            f(mean_median_error(&lab, &reduced, &kcfg), 1),
        ]);
    }
    render_table(
        &format!("Ablation 2 — clustering features (K = {k})"),
        &["Features", "reps", "mean median err %"],
        &rows,
    );

    // 3. Representative policy: medoid vs random eligible member.
    let eligible = wellness(&lab.suite, &lab.cfg, &lab.cache);
    let mut rng = StdRng::seed_from_u64(11);
    let mut random_reps = elbow.clone();
    for c in &mut random_reps.clusters {
        let ok: Vec<usize> = c
            .members
            .iter()
            .copied()
            .filter(|&m| eligible[m])
            .collect();
        if !ok.is_empty() {
            c.representative = ok[rng.gen_range(0..ok.len())];
        }
    }
    render_table(
        &format!("Ablation 3 — representative policy (K = {k})"),
        &["Policy", "mean median err %"],
        &[
            vec![
                "centroid-closest (paper)".into(),
                f(mean_median_error(&lab, &elbow, &lab.cfg), 1),
            ],
            vec![
                "random eligible member".into(),
                f(mean_median_error(&lab, &random_reps, &lab.cfg), 1),
            ],
        ],
    );

    // 4. Median vs mean estimator for the representative measurement.
    let mut rows = Vec::new();
    for (ti, target) in lab.targets.iter().enumerate() {
        let out = predict_with_runs(
            &lab.suite,
            &elbow,
            target,
            &lab.runs[ti],
            &lab.cache,
            &lab.cfg,
        );
        // Re-predict with the mean estimator.
        let mut mean_errs: Vec<f64> = Vec::new();
        for p in &out.predictions {
            if let Some(c) = p.cluster {
                let rep = elbow.clusters[c].representative;
                let m = lab.cache.measure(
                    rep,
                    &lab.suite.codelets[rep].micro,
                    target,
                    lab.cfg.noise_seed,
                    lab.cfg.micro_min_seconds,
                    lab.cfg.micro_min_invocations,
                );
                let tref_rk = lab.cfg.reference.seconds(lab.suite.codelets[rep].tref_cycles);
                let pred = p.ref_seconds * m.mean_seconds / tref_rk;
                mean_errs.push(100.0 * (pred - p.real_seconds).abs() / p.real_seconds);
            }
        }
        mean_errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean_med = mean_errs[mean_errs.len() / 2];
        rows.push(vec![
            target.name.clone(),
            f(out.median_error_pct(), 1),
            f(mean_med, 1),
        ]);
    }
    render_table(
        "Ablation 4 — microbenchmark estimator",
        &["Target", "median (paper) err %", "mean err %"],
        &rows,
    );

    // 5. K policy.
    let k18 = reduce_cached(&lab.suite, &lab.cfg.clone().with_k(KChoice::Fixed(18)), &lab.cache);
    render_table(
        "Ablation 5 — cluster-count policy",
        &["Policy", "reps", "mean median err %"],
        &[
            vec![
                format!("elbow (K = {k})"),
                elbow.n_representatives().to_string(),
                f(mean_median_error(&lab, &elbow, &lab.cfg), 1),
            ],
            vec![
                "paper's K = 18".into(),
                k18.n_representatives().to_string(),
                f(mean_median_error(&lab, &k18, &lab.cfg), 1),
            ],
        ],
    );
}

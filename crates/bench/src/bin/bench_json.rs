//! Machine-readable clustering/GA performance snapshot.
//!
//! Measures the flat numeric kernel layer end to end — pairwise
//! distances, NN-chain vs naive linkage, medoid selection — on synthetic
//! codelet matrices at n ∈ {28, 256, 1024}, plus the GA feature-selection
//! wall time on the Test-class NR suite, and writes the medians to
//! `BENCH_clustering.json`.
//!
//! Doubles as a perf regression gate: it *asserts* that the NN-chain
//! linkage beats the naive O(n³) scan by ≥ 5× at n = 1024 while
//! producing a structurally identical dendrogram.
//!
//! Usage: `cargo run --release -p fgbs-bench --bin bench_json
//! [-- --threads N]`.

use std::time::Instant;

use fgbs_clustering::{
    dendrogram_digest, linkage, medoid, naive_linkage, normalize, DistanceMatrix, Linkage,
};
use fgbs_core::{profile_reference, select_features_ga, PipelineConfig};
use fgbs_genetic::GaConfig;
use fgbs_machine::{Arch, PARK_SCALE};
use fgbs_matrix::Matrix;
use fgbs_suites::{nr_suite, Class};

/// Deterministic synthetic observation matrix: `n` codelets in 7 loose
/// blobs over 14 features (the paper's Table 2 width). A splitmix-style
/// per-cell hash keeps rows in generic position — no exactly tied
/// distances, so the chain and the naive scan produce identical trees.
fn observations(n: usize) -> Matrix {
    fn unit(seed: u64) -> f64 {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..14)
                .map(|j| {
                    let blob = (i % 7) as f64 * 10.0;
                    blob + unit((i * 14 + j) as u64)
                })
                .collect()
        })
        .collect();
    normalize(&Matrix::from_rows(&rows))
}

/// Median wall-nanoseconds of `reps` runs of `f`.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct SizePoint {
    n: usize,
    distance_ns: u64,
    linkage_nn_ns: u64,
    linkage_naive_ns: u64,
    medoid_ns: u64,
    digest_match: bool,
}

fn measure_size(n: usize) -> SizePoint {
    let data = observations(n);
    let reps = (20_000 / n).clamp(3, 50);
    let naive_reps = if n >= 512 { 3 } else { reps };

    let distance_ns = median_ns(reps, || DistanceMatrix::euclidean(&data));
    let d = DistanceMatrix::euclidean(&data);
    let linkage_nn_ns = median_ns(reps, || linkage(&d, Linkage::Ward));
    let linkage_naive_ns = median_ns(naive_reps, || naive_linkage(&d, Linkage::Ward));

    let fast = linkage(&d, Linkage::Ward);
    let slow = naive_linkage(&d, Linkage::Ward);
    let digest_match = dendrogram_digest(&fast) == dendrogram_digest(&slow);

    let k = 8.min(n);
    let part = fast.cut(k);
    let medoid_ns = median_ns(reps, || {
        (0..k).map(|c| medoid(&data, &part, c, &[])).collect::<Vec<_>>()
    });

    SizePoint {
        n,
        distance_ns,
        linkage_nn_ns,
        linkage_naive_ns,
        medoid_ns,
        digest_match,
    }
}

fn main() {
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            other => panic!("unknown argument `{other}` (usage: bench_json [--threads N])"),
        }
    }

    let points: Vec<SizePoint> = [28usize, 256, 1024].iter().map(|&n| measure_size(n)).collect();

    // Perf gate: at n = 1024 the chain must beat the naive scan ≥ 5×
    // while producing the same tree.
    let big = points.last().expect("three sizes measured");
    let speedup = big.linkage_naive_ns as f64 / big.linkage_nn_ns.max(1) as f64;
    assert!(
        big.digest_match,
        "NN-chain dendrogram diverged from the naive scan at n = {}",
        big.n
    );
    assert!(
        speedup >= 5.0,
        "NN-chain linkage only {speedup:.1}x faster than naive at n = {} (need >= 5x)",
        big.n
    );

    // GA feature selection end to end on the Test-class NR suite.
    let cfg = PipelineConfig::fast().with_threads(threads);
    let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(10).collect();
    let suite = profile_reference(&apps, &cfg);
    let ga = GaConfig {
        population: 12,
        generations: 4,
        ..GaConfig::default()
    };
    let target = Arch::atom().scaled(PARK_SCALE);
    let t = Instant::now();
    let sel = select_features_ga(&suite, &[target], &ga, &cfg);
    let ga_wall_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    assert!(sel.fitness.is_finite(), "GA must produce a finite fitness");

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"distance_ns\": {}, \"linkage_nnchain_ns\": {}, \
             \"linkage_naive_ns\": {}, \"medoid_ns\": {}, \"digest_match\": {}}}{}\n",
            p.n,
            p.distance_ns,
            p.linkage_nn_ns,
            p.linkage_naive_ns,
            p.medoid_ns,
            p.digest_match,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"linkage_speedup_at_1024\": {speedup:.2},\n"
    ));
    out.push_str(&format!(
        "  \"ga\": {{\"wall_ns\": {}, \"evaluations\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"k\": {}}}\n",
        ga_wall_ns, sel.evaluations, sel.cache_hits, sel.cache_misses, sel.k
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_clustering.json", &out).expect("write BENCH_clustering.json");
    println!("{out}");
    eprintln!(
        "linkage n=1024: nn-chain {} ns vs naive {} ns ({speedup:.1}x), digests match; \
         GA ({} evals, --threads {threads}) in {:.2} s",
        big.linkage_nn_ns,
        big.linkage_naive_ns,
        sel.evaluations,
        ga_wall_ns as f64 / 1e9
    );
}

//! Figure 3 — evolution of prediction error and benchmarking-reduction
//! factor on the NAS codelets as the cluster count increases, per target.
//! The elbow-selected K is marked with `*`.

use fgbs_bench::{f, render_table, NasLab, Options};
use fgbs_core::{reduce_cached, sweep_k};

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    let elbow = reduce_cached(&lab.suite, &lab.cfg, &lab.cache).k_requested;

    for (ti, target) in lab.targets.iter().enumerate() {
        eprintln!("[exp] sweeping K on {}…", target.name);
        let pts = sweep_k(&lab.suite, target, 24, &lab.cache, &lab.cfg);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    if p.k == elbow {
                        format!("{}*", p.k)
                    } else {
                        p.k.to_string()
                    },
                    p.representatives.to_string(),
                    f(p.median_error_pct, 1),
                    f(p.reduction_total, 1),
                ]
            })
            .collect();
        render_table(
            &format!("Figure 3 — {} (elbow K = {elbow})", target.name),
            &["K", "reps", "median err %", "reduction x"],
            &rows,
        );
        let _ = ti;
    }
    println!("\nPaper at its elbow (18): Atom 8 % / x44, Core 2 3.9 % / x25, Sandy Bridge 5.8 % / x23.");
}

//! Table 1 — test architectures.
//!
//! Prints the nominal machine park of the paper's Table 1 and the
//! uniformly scaled park the experiments actually simulate on
//! (capacities ÷ `PARK_SCALE`, all ratios preserved).

use fgbs_bench::render_table;
use fgbs_machine::{Arch, PARK_SCALE};

fn kb(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MB", bytes as f64 / (1024.0 * 1024.0))
    } else {
        format!("{} KB", bytes / 1024)
    }
}

fn rows(park: &[Arch]) -> Vec<Vec<String>> {
    park.iter()
        .map(|a| {
            let lvl = |i: usize| {
                a.caches
                    .get(i)
                    .map(|c| kb(c.size))
                    .unwrap_or_else(|| "-".to_string())
            };
            vec![
                a.name.clone(),
                a.cpu.clone(),
                format!("{:.2}", a.freq_ghz),
                a.cores.to_string(),
                if a.in_order { "in-order" } else { "OOO" }.to_string(),
                lvl(0),
                lvl(1),
                lvl(2),
            ]
        })
        .collect()
}

fn main() {
    let headers = [
        "Machine", "CPU", "GHz", "Cores", "Pipeline", "L1D", "L2", "L3",
    ];
    render_table(
        "Table 1 — nominal machine park (paper values)",
        &headers,
        &rows(&Arch::table1()),
    );
    render_table(
        &format!("Table 1 — simulated park (capacities / {PARK_SCALE})"),
        &headers,
        &rows(&Arch::park_scaled()),
    );
    println!(
        "\nReference: Nehalem. Targets: Atom, Core 2, Sandy Bridge (as in the paper)."
    );
}

//! Table 4 — NR prediction errors at K = 14 and K = 24 (the elbow choice
//! in the paper) on Atom and Sandy Bridge.

use fgbs_bench::{f, render_table, NrLab, Options};
use fgbs_core::{predict_with_runs, reduce_cached, KChoice};

fn main() {
    let opts = Options::from_args();
    let lab = NrLab::new(opts);

    let elbow_cfg = lab.cfg.clone();
    let elbow_reduced = reduce_cached(&lab.suite, &elbow_cfg, &lab.cache);
    let elbow_k = elbow_reduced.k_requested;

    let mut rows = Vec::new();
    for (ti, target) in lab.targets.iter().enumerate() {
        let mut row = vec![target.name.clone()];
        for k in [14usize, 24, elbow_k] {
            let cfg = lab.cfg.clone().with_k(KChoice::Fixed(k));
            let reduced = reduce_cached(&lab.suite, &cfg, &lab.cache);
            let out =
                predict_with_runs(&lab.suite, &reduced, target, &lab.runs[ti], &lab.cache, &cfg);
            row.push(f(out.median_error_pct(), 1));
            row.push(f(out.average_error_pct(), 1));
        }
        rows.push(row);
    }
    render_table(
        &format!("Table 4 — NR prediction errors (%) — elbow chose K = {elbow_k}"),
        &[
            "Target",
            "K=14 med",
            "K=14 avg",
            "K=24 med",
            "K=24 avg",
            "elbow med",
            "elbow avg",
        ],
        &rows,
    );
    println!("\nPaper: K=14 Atom 1.8/12, SB 3.2/9.3; K=24 (elbow) Atom 0/1.7, SB 0/0.97.");
}

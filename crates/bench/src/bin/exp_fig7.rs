//! Figure 7 — GA-feature-guided clustering vs random clusterings.
//!
//! For each cluster count, many random partitions are pushed through
//! Steps D + E and their best/median/worst errors compared with the
//! feature-guided clustering. The guided clustering should sit close to
//! (or below) the best random draw.

use fgbs_bench::{f, render_table, NasLab, Options};
use fgbs_core::{predict_with_runs, random_clustering_errors, reduce_cached, KChoice};

fn main() {
    let opts = Options::from_args();
    let samples = if opts.quick { 50 } else { 1000 };
    let lab = NasLab::new(opts);

    for (ti, target) in lab.targets.iter().enumerate() {
        eprintln!("[exp] random clusterings on {} ({samples} samples/K)…", target.name);
        let mut rows = Vec::new();
        for k in (2..=24).step_by(2) {
            let cfg = lab.cfg.clone().with_k(KChoice::Fixed(k));
            let reduced = reduce_cached(&lab.suite, &cfg, &lab.cache);
            let guided =
                predict_with_runs(&lab.suite, &reduced, target, &lab.runs[ti], &lab.cache, &cfg)
                    .median_error_pct();
            let stats = random_clustering_errors(
                &lab.suite,
                &reduced,
                target,
                &lab.runs[ti],
                k,
                samples,
                42,
                &lab.cache,
                &cfg,
            );
            rows.push(vec![
                k.to_string(),
                f(guided, 1),
                f(stats.best, 1),
                f(stats.median, 1),
                f(stats.worst, 1),
            ]);
        }
        render_table(
            &format!("Figure 7 — {} ({} random clusterings per K)", target.name, samples),
            &["K", "GA features", "best random", "median random", "worst random"],
            &rows,
        );
    }
    println!("\nPaper: the feature-guided clustering is consistently close to or better");
    println!("than the best of 1000 random clusterings.");
}

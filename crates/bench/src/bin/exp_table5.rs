//! Table 5 — benchmarking-reduction factor breakdown
//! (`total = reduced-invocations × clustering`), per target, at the elbow
//! representative count.

use fgbs_bench::{f, render_table, NasLab, Options};
use fgbs_core::{predict_with_runs, reduce_cached, reduction_factor};

fn main() {
    let opts = Options::from_args();
    let lab = NasLab::new(opts);
    let reduced = reduce_cached(&lab.suite, &lab.cfg, &lab.cache);

    let mut rows = Vec::new();
    for (ti, target) in lab.targets.iter().enumerate() {
        let out =
            predict_with_runs(&lab.suite, &reduced, target, &lab.runs[ti], &lab.cache, &lab.cfg);
        let b = reduction_factor(&lab.suite, &reduced, &out, target, &lab.cache, &lab.cfg);
        rows.push(vec![
            target.name.clone(),
            f(b.total, 1),
            f(b.invocation_factor, 1),
            f(b.clustering_factor, 1),
            format!("{:.2} s", b.full_seconds),
            format!("{:.4} s", b.reduced_seconds),
        ]);
    }
    render_table(
        &format!(
            "Table 5 — reduction breakdown with {} representatives",
            reduced.n_representatives()
        ),
        &[
            "Target",
            "Total x",
            "Reduced invocations x",
            "Clustering x",
            "Full suite",
            "Reduced suite",
        ],
        &rows,
    );
    println!("\nPaper (18 reps): Atom 44.3 = 12 x 3.7; Core 2 24.7 = 8.7 x 2.8; SB 22.5 = 6.3 x 3.6.");
    println!(
        "Clustering factor ~ codelets/representatives = {}/{} = {:.1} (paper: 67/18 = 3.7).",
        lab.suite.len(),
        reduced.n_representatives(),
        lab.suite.len() as f64 / reduced.n_representatives() as f64
    );
}

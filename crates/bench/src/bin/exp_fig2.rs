//! Figure 2 — predicted vs real execution times on Atom for the first two
//! NR clusters of the K = 14 cut. Representatives are enclosed in angle
//! brackets and predicted exactly (they are measured directly).

use fgbs_bench::{render_table, secs, NrLab, Options};
use fgbs_core::{predict_with_runs, reduce_cached, KChoice};

fn main() {
    let opts = Options::from_args();
    let lab = NrLab::new(opts);
    let cfg = lab.cfg.clone().with_k(KChoice::Fixed(14));
    let reduced = reduce_cached(&lab.suite, &cfg, &lab.cache);
    let atom = &lab.targets[0];
    let out = predict_with_runs(&lab.suite, &reduced, atom, &lab.runs[0], &lab.cache, &cfg);

    let mut rows = Vec::new();
    for cluster in 0..2.min(reduced.clusters.len()) {
        for &i in &reduced.clusters[cluster].members {
            let p = &out.predictions[i];
            let name = if p.is_representative {
                format!("<{}>", lab.suite.codelets[i].name)
            } else {
                lab.suite.codelets[i].name.clone()
            };
            rows.push(vec![
                (cluster + 1).to_string(),
                name,
                secs(p.ref_seconds),
                secs(p.real_seconds),
                secs(p.predicted_seconds.unwrap_or(f64::NAN)),
                format!("{:.2}", p.error_pct.unwrap_or(f64::NAN)),
            ]);
        }
    }
    render_table(
        "Figure 2 — clusters 1-2 on Atom: per-invocation times",
        &[
            "C",
            "Codelet",
            "Reference (Nehalem)",
            "Atom real",
            "Atom predicted",
            "error %",
        ],
        &rows,
    );
    println!("\nRepresentatives <> have ~0 % error because they are measured directly;");
    println!("siblings inherit the representative's speedup (the arrow translation of Fig. 2).");
}

//! The declarative benchmark registry.
//!
//! Benchmarks are *data*, not code: the built-in registry lives in
//! `registry.json` (embedded at compile time) and an alternate file can
//! be loaded with `fgbs bench --registry FILE`. Each entry names a
//! workload [`Stage`] the runner knows how to execute, keyed by
//! suite × stage × size × threads, with its sample counts, per-sample
//! batch size, and optional perf gates — either an absolute per-op
//! bound (`max_ns`) or a ratio bound against a sibling entry (`gate`).
//!
//! Adding a benchmark means adding a JSON object; the set of stages the
//! runner implements is the only code surface.

use fgbs_trace::Json;

/// Registry format version. Bump when the entry schema changes.
pub const REGISTRY_SCHEMA: u64 = 1;

/// The measured workloads the runner implements. The registry maps each
/// entry onto one of these by its `stage` string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Fixed splitmix spin: the machine-speed calibration anchor.
    Calibrate,
    /// Pairwise Euclidean distance construction over `size` codelets.
    Distance,
    /// O(n²) NN-chain Ward linkage over a prebuilt distance matrix.
    LinkageNnChain,
    /// O(n³) naive closest-pair scan (the oracle the chain replaced).
    LinkageNaive,
    /// Medoid selection over an 8-way cut of the dendrogram.
    Medoid,
    /// GA fitness, cold: masked distances from scratch (64 of 76 bits).
    GaMaskedCold,
    /// GA fitness, incremental: patch 2 flipped feature bits.
    GaMaskedPatch,
    /// Full GA feature selection on `size` Test-class NR codes.
    GaSelect,
    /// Artifact store publish: one fsynced put of a `size`-byte payload.
    StorePublish,
    /// Artifact store replay: one get of a stored `size`-byte payload.
    StoreReplay,
    /// One enabled trace span with a u64 argument.
    TraceSpan,
    /// One disarmed failpoint probe (a single relaxed atomic load).
    FaultProbe,
    /// Full profile+reduce pipeline on `size` Test-class NR codes.
    PipelineReduce,
    /// The same pipeline with the trace collector enabled (flight
    /// recorder explicitly disarmed: this isolates the span cost).
    PipelineReduceTraced,
    /// The traced pipeline with the flight recorder armed — the full
    /// production observability posture.
    PipelineReduceTracedArmed,
    /// One armed flight-recorder event (`record_at` into the ring).
    ObsFlightrecRecord,
    /// One value recorded into a log-linear quantile histogram.
    ObsHistRecord,
    /// Build + encode a snippet pack from `size` bigdata apps.
    SnippetPack,
    /// Parse + checksum + semantically validate an encoded pack.
    SnippetUnpackVerify,
    /// Replay a parsed pack against its bitwise contract.
    SnippetReplay,
    /// Execute the same codelets in-process (the replay baseline).
    SnippetInproc,
    /// Mean per-request latency of a keep-alive load run against the
    /// event-driven server (`size` concurrent connections).
    ServeLoadEvent,
    /// Mean per-request latency of a one-connection-per-request load
    /// run against the blocking thread-per-connection server.
    ServeLoadBlocking,
    /// p99 per-request latency, event-driven server.
    ServeLoadEventP99,
    /// p99 per-request latency, blocking server.
    ServeLoadBlockingP99,
    /// Wall-clock nanoseconds per completed request (inverse
    /// throughput), event-driven server.
    ServeLoadEventWall,
    /// Wall-clock nanoseconds per completed request, blocking server.
    ServeLoadBlockingWall,
}

impl Stage {
    /// Parse the registry's `stage` string.
    pub fn parse(s: &str) -> Option<Stage> {
        Some(match s {
            "calibrate" => Stage::Calibrate,
            "distance" => Stage::Distance,
            "linkage_nnchain" => Stage::LinkageNnChain,
            "linkage_naive" => Stage::LinkageNaive,
            "medoid" => Stage::Medoid,
            "ga_masked_cold" => Stage::GaMaskedCold,
            "ga_masked_patch" => Stage::GaMaskedPatch,
            "ga_select" => Stage::GaSelect,
            "store_publish" => Stage::StorePublish,
            "store_replay" => Stage::StoreReplay,
            "trace_span" => Stage::TraceSpan,
            "fault_probe" => Stage::FaultProbe,
            "pipeline_reduce" => Stage::PipelineReduce,
            "pipeline_reduce_traced" => Stage::PipelineReduceTraced,
            "pipeline_reduce_traced_armed" => Stage::PipelineReduceTracedArmed,
            "obs_flightrec_record" => Stage::ObsFlightrecRecord,
            "obs_hist_record" => Stage::ObsHistRecord,
            "snippet_pack" => Stage::SnippetPack,
            "snippet_unpack_verify" => Stage::SnippetUnpackVerify,
            "snippet_replay" => Stage::SnippetReplay,
            "snippet_inproc" => Stage::SnippetInproc,
            "serve_load_event" => Stage::ServeLoadEvent,
            "serve_load_blocking" => Stage::ServeLoadBlocking,
            "serve_load_event_p99" => Stage::ServeLoadEventP99,
            "serve_load_blocking_p99" => Stage::ServeLoadBlockingP99,
            "serve_load_event_wall" => Stage::ServeLoadEventWall,
            "serve_load_blocking_wall" => Stage::ServeLoadBlockingWall,
            _ => return None,
        })
    }
}

/// A ratio gate: `median(self) <= max_ratio × median(vs)`, checked
/// within one run. `max_ratio < 1` asserts a speedup (the NN-chain must
/// be ≥5× faster than the naive scan ⇒ `max_ratio: 0.2`); `> 1` bounds
/// an overhead (the traced pipeline within 5% of the untraced one).
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// The entry this one is measured against.
    pub vs: String,
    /// Largest acceptable `median(self) / median(vs)`.
    pub max_ratio: f64,
}

/// One benchmark definition.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDef {
    /// Stable identity, `suite/stage/n<size>/t<threads>` by convention.
    /// Records are aligned by this id in `fgbs bench cmp`.
    pub id: String,
    /// Grouping label (`clustering`, `store`, `calibration`, …).
    pub suite: String,
    /// The workload to run.
    pub stage: Stage,
    /// Problem-size knob, interpreted per stage (codelets, bytes, apps).
    pub size: usize,
    /// Worker threads; `0` means "use the runner's `--threads`".
    pub threads: usize,
    /// Samples recorded in a full run.
    pub iters: usize,
    /// Samples recorded under `--quick`.
    pub quick_iters: usize,
    /// Operations timed per sample (per-op cost = sample / batch).
    pub batch: u64,
    /// Run only in full mode (too slow for the CI quick gate).
    pub full_only: bool,
    /// Absolute per-op bound in nanoseconds, checked after the run.
    pub max_ns: Option<u64>,
    /// Ratio bound against a sibling entry, checked after the run.
    pub gate: Option<Gate>,
}

impl BenchDef {
    /// Sample count for the given mode.
    pub fn samples(&self, quick: bool) -> usize {
        if quick {
            self.quick_iters
        } else {
            self.iters
        }
    }
}

/// A validated set of benchmark definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    /// Format version of the source document.
    pub schema: u64,
    /// The benchmark definitions, in document order.
    pub benchmarks: Vec<BenchDef>,
}

impl Registry {
    /// The registry embedded in the binary (`registry.json`).
    pub fn builtin() -> Registry {
        Registry::parse(include_str!("registry.json"))
            .expect("the embedded registry must be valid")
    }

    /// Parse and validate a registry document.
    pub fn parse(src: &str) -> Result<Registry, String> {
        let doc = Json::parse(src).map_err(|e| format!("registry is not valid JSON: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("registry needs a numeric `schema`")?;
        if schema != REGISTRY_SCHEMA {
            return Err(format!(
                "unsupported registry schema {schema} (this build reads {REGISTRY_SCHEMA})"
            ));
        }
        let entries = doc
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("registry needs a `benchmarks` array")?;
        let mut benchmarks = Vec::with_capacity(entries.len());
        for e in entries {
            benchmarks.push(parse_entry(e)?);
        }
        let reg = Registry { schema, benchmarks };
        reg.validate()?;
        Ok(reg)
    }

    /// Entry lookup by id.
    pub fn find(&self, id: &str) -> Option<&BenchDef> {
        self.benchmarks.iter().find(|b| b.id == id)
    }

    /// Cross-entry invariants: unique ids, resolvable gates.
    fn validate(&self) -> Result<(), String> {
        for (i, b) in self.benchmarks.iter().enumerate() {
            if self.benchmarks[..i].iter().any(|o| o.id == b.id) {
                return Err(format!("duplicate benchmark id `{}`", b.id));
            }
        }
        for b in &self.benchmarks {
            if let Some(g) = &b.gate {
                if g.vs == b.id {
                    return Err(format!("`{}` gates against itself", b.id));
                }
                if self.find(&g.vs).is_none() {
                    return Err(format!(
                        "`{}` gates against unknown benchmark `{}`",
                        b.id, g.vs
                    ));
                }
                if !(g.max_ratio.is_finite() && g.max_ratio > 0.0) {
                    return Err(format!("`{}` has a non-positive gate ratio", b.id));
                }
            }
        }
        Ok(())
    }
}

fn parse_entry(e: &Json) -> Result<BenchDef, String> {
    let str_field = |key: &str| -> Result<String, String> {
        e.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("benchmark entry needs a string `{key}`: {}", e.render()))
    };
    let num_field = |key: &str| -> Result<u64, String> {
        e.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("benchmark entry needs a numeric `{key}`: {}", e.render()))
    };
    let id = str_field("id")?;
    let stage_name = str_field("stage")?;
    let stage = Stage::parse(&stage_name)
        .ok_or_else(|| format!("`{id}`: unknown stage `{stage_name}`"))?;
    let iters = num_field("iters")? as usize;
    let quick_iters = num_field("quick_iters")? as usize;
    if iters == 0 || quick_iters == 0 {
        return Err(format!("`{id}`: iteration counts must be >= 1"));
    }
    let batch = match e.get("batch") {
        Some(v) => v
            .as_u64()
            .filter(|b| *b >= 1)
            .ok_or_else(|| format!("`{id}`: `batch` must be a positive integer"))?,
        None => 1,
    };
    let full_only = match e.get("full_only") {
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(format!("`{id}`: `full_only` must be a boolean")),
        None => false,
    };
    let max_ns = match e.get("max_ns") {
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| format!("`{id}`: `max_ns` must be an integer"))?,
        ),
        None => None,
    };
    let gate = match e.get("gate") {
        Some(g) => {
            let vs = g
                .get("vs")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("`{id}`: gate needs a string `vs`"))?;
            let max_ratio = g
                .get("max_ratio")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("`{id}`: gate needs a numeric `max_ratio`"))?;
            Some(Gate {
                vs: vs.to_string(),
                max_ratio,
            })
        }
        None => None,
    };
    Ok(BenchDef {
        id,
        suite: str_field("suite")?,
        stage,
        size: num_field("size")? as usize,
        threads: num_field("threads")? as usize,
        iters,
        quick_iters,
        batch,
        full_only,
        max_ns,
        gate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_is_valid_and_covers_every_subsystem() {
        let r = Registry::builtin();
        assert_eq!(r.schema, REGISTRY_SCHEMA);
        assert!(r.benchmarks.len() >= 15, "got {}", r.benchmarks.len());
        for suite in [
            "calibration",
            "clustering",
            "ga",
            "store",
            "trace",
            "fault",
            "pipeline",
            "snippet",
            "obs",
            "serve",
        ] {
            assert!(
                r.benchmarks.iter().any(|b| b.suite == suite),
                "no `{suite}` benchmarks in the built-in registry"
            );
        }
        // The folded gates survive the move into data: NN-chain ≥5×,
        // span ≤100 ns, disarmed probe ≤1 µs, traced pipeline ≤5%.
        let chain = r.find("clustering/linkage_nnchain/n1024/t1").unwrap();
        assert_eq!(chain.gate.as_ref().unwrap().max_ratio, 0.2);
        // The SIMD tile scheduler's pins: the absolute bound on the
        // single-thread n1024 build (4.7 ms before the kernel layer),
        // and pooled rows bounded against their serial siblings (the
        // ratio is tolerant — CI hosts may expose a single CPU, where
        // fanning out buys nothing and costs thread spawns).
        let d1 = r.find("clustering/distance/n1024/t1").unwrap();
        assert_eq!(d1.max_ns, Some(1_500_000));
        for id in ["clustering/distance/n1024/t4", "clustering/distance/n1024/t8"] {
            let dt = r.find(id).unwrap();
            assert_eq!(dt.gate.as_ref().unwrap().vs, "clustering/distance/n1024/t1");
        }
        let mp = r.find("ga/masked_patch/n128/t4").unwrap();
        assert_eq!(mp.gate.as_ref().unwrap().vs, "ga/masked_patch/n128/t1");
        assert_eq!(r.find("trace/span/n1/t1").unwrap().max_ns, Some(200));
        assert_eq!(r.find("fault/probe/n1/t1").unwrap().max_ns, Some(1000));
        let traced = r.find("pipeline/reduce_traced/n10/t0").unwrap();
        assert_eq!(traced.gate.as_ref().unwrap().vs, "pipeline/reduce/n10/t0");
        // The observability gates: armed recorder ≤50 ns/event, full
        // armed pipeline still within 5% of the untraced baseline.
        assert_eq!(r.find("obs/flightrec_record/n1/t1").unwrap().max_ns, Some(50));
        assert!(r.find("obs/hist_record/n1/t1").unwrap().max_ns.is_some());
        let armed = r.find("pipeline/reduce_traced_armed/n10/t0").unwrap();
        let armed_gate = armed.gate.as_ref().unwrap();
        assert_eq!(armed_gate.vs, "pipeline/reduce/n10/t0");
        assert_eq!(armed_gate.max_ratio, 1.05);
        // Replaying a pack must cost within 5% of in-process execution.
        let replay = r.find("snippet/replay/n3/t1").unwrap();
        let gate = replay.gate.as_ref().unwrap();
        assert_eq!(gate.vs, "snippet/inproc/n3/t1");
        assert_eq!(gate.max_ratio, 1.05);
        // The event-driven serve loop must beat the thread-per-
        // connection baseline on mean latency, p99, and throughput at
        // 64 concurrent connections.
        for (event, blocking) in [
            ("serve/hot_event/n64/t4", "serve/hot_blocking/n64/t4"),
            ("serve/p99_event/n64/t4", "serve/p99_blocking/n64/t4"),
            ("serve/wall_event/n64/t4", "serve/wall_blocking/n64/t4"),
        ] {
            let e = r.find(event).unwrap();
            let gate = e.gate.as_ref().unwrap();
            assert_eq!(gate.vs, blocking);
            assert_eq!(gate.max_ratio, 1.0);
        }
    }

    #[test]
    fn rejects_malformed_registries() {
        for (bad, why) in [
            ("{", "not JSON"),
            (r#"{"schema":2,"benchmarks":[]}"#, "wrong schema"),
            (r#"{"benchmarks":[]}"#, "missing schema"),
            (r#"{"schema":1}"#, "missing benchmarks"),
            (
                r#"{"schema":1,"benchmarks":[{"id":"a","suite":"s","stage":"warp","size":1,"threads":1,"iters":1,"quick_iters":1}]}"#,
                "unknown stage",
            ),
            (
                r#"{"schema":1,"benchmarks":[{"id":"a","suite":"s","stage":"calibrate","size":1,"threads":1,"iters":0,"quick_iters":1}]}"#,
                "zero iters",
            ),
            (
                r#"{"schema":1,"benchmarks":[
                    {"id":"a","suite":"s","stage":"calibrate","size":1,"threads":1,"iters":1,"quick_iters":1},
                    {"id":"a","suite":"s","stage":"calibrate","size":1,"threads":1,"iters":1,"quick_iters":1}]}"#,
                "duplicate id",
            ),
            (
                r#"{"schema":1,"benchmarks":[{"id":"a","suite":"s","stage":"calibrate","size":1,"threads":1,"iters":1,"quick_iters":1,"gate":{"vs":"ghost","max_ratio":1.0}}]}"#,
                "dangling gate",
            ),
            (
                r#"{"schema":1,"benchmarks":[{"id":"a","suite":"s","stage":"calibrate","size":1,"threads":1,"iters":1,"quick_iters":1,"gate":{"vs":"a","max_ratio":1.0}}]}"#,
                "self gate",
            ),
        ] {
            assert!(Registry::parse(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn stage_names_round_trip() {
        for name in [
            "calibrate",
            "distance",
            "linkage_nnchain",
            "linkage_naive",
            "medoid",
            "ga_masked_cold",
            "ga_masked_patch",
            "ga_select",
            "store_publish",
            "store_replay",
            "trace_span",
            "fault_probe",
            "pipeline_reduce",
            "pipeline_reduce_traced",
            "pipeline_reduce_traced_armed",
            "obs_flightrec_record",
            "obs_hist_record",
            "snippet_pack",
            "snippet_unpack_verify",
            "snippet_replay",
            "snippet_inproc",
            "serve_load_event",
            "serve_load_blocking",
            "serve_load_event_p99",
            "serve_load_blocking_p99",
            "serve_load_event_wall",
            "serve_load_blocking_wall",
        ] {
            assert!(Stage::parse(name).is_some(), "stage `{name}` must parse");
        }
        assert!(Stage::parse("nope").is_none());
    }
}

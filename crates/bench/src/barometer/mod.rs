//! The benchmark barometer: a declarative registry of perf probes, a
//! runner that emits schema-versioned measurement records, and a
//! noise-aware record comparison engine.
//!
//! Layout:
//! - [`registry`] — the data-driven benchmark catalogue (embedded
//!   `registry.json`), keyed `suite/stage/nSIZE/tTHREADS`, with
//!   declarative perf gates (`max_ns`, `gate: {vs, max_ratio}`).
//! - [`workloads`] — the measured operation behind each stage, timed on
//!   the calibrated trace clock.
//! - [`runner`] — selection (`--filter`, `--quick`), execution under
//!   deterministic `bench.case` spans, gate evaluation, and the
//!   human-readable run report.
//! - [`record`] — the versioned on-disk record: environment
//!   fingerprint, per-benchmark robust stats, strict round-trip codec.
//! - [`cmp`] — `fgbs bench cmp`: ratio-of-medians verdicts against
//!   per-benchmark noise floors, normalized by the calibration spin so
//!   a committed baseline gates CI runners of a different speed.

pub mod cmp;
pub mod record;
pub mod registry;
pub mod runner;
pub mod workloads;

pub use cmp::{compare, decide, threshold_pct, CmpOptions, CmpReport, CmpRow, Verdict};
pub use record::{BenchResult, EnvFingerprint, Record, RECORD_SCHEMA};
pub use registry::{BenchDef, Gate, Registry, Stage, REGISTRY_SCHEMA};
pub use runner::{render_report, run_registry, GateOutcome, RunOptions, RunOutput};

/// Render a nanosecond quantity with a human-scale unit.
pub fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        format!("{ns}")
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_ns;

    #[test]
    fn fmt_ns_picks_human_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 us");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(12_340_000_000.0), "12.340 s");
    }
}

//! The measured workloads behind each registry [`Stage`].
//!
//! Every stage builds its inputs *outside* the timed region, runs one
//! untimed warm-up operation, then records `samples` wall-clock samples
//! of `batch` operations each on the calibrated trace clock
//! (`fgbs_trace::now_ns` — the same time source the spans use). Sample
//! values are per-op nanoseconds.
//!
//! Stages that need the trace collector enabled (`trace_span`,
//! `pipeline_reduce_traced`) enable it for their duration and restore
//! the previous state — when a `--trace` run already has the collector
//! on, they leave it on and keep their (deterministic) spans in the
//! trace, so the bench runner honours the thread-invariant digest
//! contract.

use std::hint::black_box;

use fgbs_clustering::{linkage, medoid, normalize, DistanceMatrix, Linkage, MaskedDistanceCache};
use fgbs_clustering::naive_linkage;
use fgbs_core::{profile_reference, reduce_cached, select_features_ga, KChoice, MicroCache, PipelineConfig};
use fgbs_genetic::GaConfig;
use fgbs_machine::{Arch, PARK_SCALE};
use fgbs_matrix::Matrix;
use fgbs_pool::WorkPool;
use fgbs_serve::{loadgen, LoopOptions, ServeOptions, Server, Service};
use fgbs_snippet::{build_pack, encode_pack, parse_pack, replay_pack, snippet_digest, verify_pack};
use fgbs_store::{ArtifactKind, Store};
use fgbs_suites::{bigdata_suite, nr_suite, Class};

use super::registry::{BenchDef, Stage};

/// One splitmix64 step — the calibration spin and the synthetic data
/// generator share it.
#[inline]
fn splitmix(seed: u64) -> u64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Deterministic synthetic observation matrix: `n` codelets in 7 loose
/// blobs over `cols` features, rows in generic position (no exactly
/// tied distances). The same shape `bench_json` used, so the recorded
/// trajectory stays comparable with the old `BENCH_clustering.json`.
fn observations(n: usize, cols: usize) -> Matrix {
    let unit = |seed: u64| (splitmix(seed) >> 11) as f64 / (1u64 << 53) as f64;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..cols)
                .map(|j| (i % 7) as f64 * 10.0 + unit((i * cols + j) as u64))
                .collect()
        })
        .collect();
    normalize(&Matrix::from_rows(&rows))
}

/// Time one batch of `op` calls; returns per-op nanoseconds.
fn time_batch(batch: u64, op: &mut impl FnMut(u64)) -> f64 {
    let t0 = fgbs_trace::now_ns();
    for i in 0..batch {
        op(i);
    }
    let dt = fgbs_trace::now_ns().saturating_sub(t0);
    dt as f64 / batch as f64
}

/// One warm-up op, then `samples` timed batches.
fn run_samples(batch: u64, samples: usize, mut op: impl FnMut(u64)) -> Vec<f64> {
    op(0);
    (0..samples).map(|_| time_batch(batch, &mut op)).collect()
}

/// Enable the trace collector for a closure, restoring the previous
/// state afterwards. When the collector was off, the spans recorded
/// inside are drained away so a plain `fgbs bench` leaves no residue.
fn with_trace_enabled<T>(f: impl FnOnce() -> T) -> T {
    let was_on = fgbs_trace::enabled();
    if !was_on {
        fgbs_trace::set_enabled(true);
    }
    let out = f();
    if !was_on {
        fgbs_trace::set_enabled(false);
        let _ = fgbs_trace::drain();
    }
    out
}

/// Arm or disarm the flight recorder for a closure, restoring the
/// previous state afterwards. The traced-pipeline entries use it to
/// separate the span cost (recorder off) from the full production
/// posture (recorder on); `set_enabled(true)` arms it as a side
/// effect, so the disarm direction matters.
fn with_flightrec_armed<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let was = fgbs_trace::flightrec::armed();
    fgbs_trace::flightrec::arm(on);
    let out = f();
    fgbs_trace::flightrec::arm(was);
    out
}

/// Execute `def`'s workload and return `samples` per-op nanosecond
/// samples. `effective_threads` substitutes for `threads: 0` entries.
pub fn measure(def: &BenchDef, samples: usize, effective_threads: usize) -> Result<Vec<f64>, String> {
    let threads = if def.threads == 0 {
        effective_threads
    } else {
        def.threads
    };
    let batch = def.batch;
    let out = match def.stage {
        Stage::Calibrate => {
            let n = def.size as u64;
            run_samples(batch, samples, |i| {
                let mut acc = 0x243F_6A88_85A3_08D3u64 ^ i;
                for k in 0..n {
                    acc = acc.wrapping_add(splitmix(acc ^ k));
                }
                black_box(acc);
            })
        }
        Stage::Distance => {
            let data = observations(def.size, 14);
            let pool = WorkPool::new(threads);
            run_samples(batch, samples, |_| {
                black_box(DistanceMatrix::euclidean_with(&data, &pool));
            })
        }
        Stage::LinkageNnChain => {
            let d = DistanceMatrix::euclidean(&observations(def.size, 14));
            run_samples(batch, samples, |_| {
                black_box(linkage(&d, Linkage::Ward));
            })
        }
        Stage::LinkageNaive => {
            let d = DistanceMatrix::euclidean(&observations(def.size, 14));
            run_samples(batch, samples, |_| {
                black_box(naive_linkage(&d, Linkage::Ward));
            })
        }
        Stage::Medoid => {
            let data = observations(def.size, 14);
            let dend = linkage(&DistanceMatrix::euclidean(&data), Linkage::Ward);
            let k = 8.min(def.size);
            let part = dend.cut(k);
            run_samples(batch, samples, |_| {
                for c in 0..k {
                    black_box(medoid(&data, &part, c, &[]));
                }
            })
        }
        Stage::GaMaskedCold => {
            let z = observations(def.size, 76);
            let all: Vec<usize> = (0..64).collect();
            run_samples(batch, samples, |_| {
                black_box(MaskedDistanceCache::new(z.clone()).distances(&all));
            })
        }
        Stage::GaMaskedPatch => {
            let z = observations(def.size, 76);
            let all: Vec<usize> = (0..64).collect();
            let mut flipped = all.clone();
            flipped.remove(3);
            flipped.push(70);
            let pool = WorkPool::new(threads);
            let mut cache = MaskedDistanceCache::new(z);
            let _ = cache.distances_with(&all, &pool);
            let mut turn = false;
            run_samples(batch, samples, move |_| {
                // Alternate two masks two bits apart: every op patches.
                turn = !turn;
                black_box(cache.distances_with(if turn { &flipped } else { &all }, &pool));
            })
        }
        Stage::GaSelect => {
            let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(def.size).collect();
            let cfg = PipelineConfig::fast().with_threads(threads);
            let suite = profile_reference(&apps, &cfg);
            let targets = vec![Arch::atom().scaled(PARK_SCALE)];
            let ga = GaConfig {
                population: 12,
                generations: 4,
                ..GaConfig::default()
            };
            run_samples(batch, samples, |_| {
                black_box(select_features_ga(&suite, &targets, &ga, &cfg));
            })
        }
        Stage::StorePublish => {
            let root = bench_dir("publish");
            let store = Store::open(&root).map_err(|e| format!("bench store: {e}"))?;
            let payload = vec![0xA5u8; def.size];
            let mut next_key = 0u64;
            let out = run_samples(batch, samples, |_| {
                // A fresh key every op: each publish frames, checksums
                // and fsyncs a new object — no dedup short-circuit.
                next_key += 1;
                store
                    .put(ArtifactKind::Response, &format!("bench-{next_key}"), &payload)
                    .expect("bench store put");
            });
            let _ = std::fs::remove_dir_all(&root);
            out
        }
        Stage::StoreReplay => {
            let root = bench_dir("replay");
            let store = Store::open(&root).map_err(|e| format!("bench store: {e}"))?;
            let payload = vec![0x5Au8; def.size];
            let keys: Vec<String> = (0..16).map(|i| format!("bench-{i}")).collect();
            for k in &keys {
                store
                    .put(ArtifactKind::Response, k, &payload)
                    .map_err(|e| format!("bench store seed: {e}"))?;
            }
            let out = run_samples(batch, samples, |i| {
                let got = store
                    .get(ArtifactKind::Response, &keys[(i % 16) as usize])
                    .expect("bench store get");
                black_box(got);
            });
            let _ = std::fs::remove_dir_all(&root);
            out
        }
        Stage::TraceSpan => {
            // A bounded buffer keeps the span loops from accumulating
            // memory; eviction cost is part of the honest price. Under
            // `--trace` the collector is already on — leave its
            // capacity (and the user's spans) alone.
            let was_on = fgbs_trace::enabled();
            if !was_on {
                fgbs_trace::set_capacity(8192);
            }
            let out = with_trace_enabled(|| {
                run_samples(batch, samples, |i| {
                    let mut s = fgbs_trace::span("bench.span");
                    s.arg_u64("i", i);
                })
            });
            if !was_on {
                fgbs_trace::set_capacity(0);
            }
            out
        }
        Stage::FaultProbe => run_samples(batch, samples, |_| {
            black_box(fgbs_fault::maybe_io("bench.probe")).ok();
        }),
        Stage::PipelineReduce => {
            let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(def.size).collect();
            let cfg = PipelineConfig::fast()
                .with_k(KChoice::Fixed(4))
                .with_threads(threads);
            run_samples(batch, samples, |_| {
                let suite = profile_reference(&apps, &cfg);
                black_box(reduce_cached(&suite, &cfg, &MicroCache::new()));
            })
        }
        Stage::PipelineReduceTraced => {
            let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(def.size).collect();
            let cfg = PipelineConfig::fast()
                .with_k(KChoice::Fixed(4))
                .with_threads(threads);
            with_trace_enabled(|| {
                with_flightrec_armed(false, || {
                    run_samples(batch, samples, |_| {
                        let suite = profile_reference(&apps, &cfg);
                        black_box(reduce_cached(&suite, &cfg, &MicroCache::new()));
                    })
                })
            })
        }
        Stage::PipelineReduceTracedArmed => {
            let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(def.size).collect();
            let cfg = PipelineConfig::fast()
                .with_k(KChoice::Fixed(4))
                .with_threads(threads);
            with_trace_enabled(|| {
                with_flightrec_armed(true, || {
                    run_samples(batch, samples, |_| {
                        let suite = profile_reference(&apps, &cfg);
                        black_box(reduce_cached(&suite, &cfg, &MicroCache::new()));
                    })
                })
            })
        }
        Stage::ObsFlightrecRecord => {
            // The ring is bounded: a long batch overwrites the oldest
            // slot, which is the honest steady-state cost. The explicit
            // timestamp mirrors the span path (it reuses the span's end
            // time instead of reading the clock twice).
            with_flightrec_armed(true, || {
                run_samples(batch, samples, |i| {
                    fgbs_trace::flightrec::record_at(
                        i,
                        fgbs_trace::flightrec::EventKind::Note,
                        "bench.obs",
                        i,
                    );
                })
            })
        }
        Stage::ObsHistRecord => {
            let h = fgbs_trace::hist::Histogram::new();
            run_samples(batch, samples, |i| {
                h.record(i);
            })
        }
        Stage::SnippetPack => {
            let apps: Vec<_> = bigdata_suite(Class::Test)
                .into_iter()
                .take(def.size)
                .collect();
            let pool = WorkPool::new(threads);
            run_samples(batch, samples, |_| {
                let pack = build_pack("bench", "bigdata", "class=test", &apps, &pool)
                    .expect("bench pack builds");
                black_box(encode_pack(&pack));
            })
        }
        Stage::SnippetUnpackVerify => {
            let apps: Vec<_> = bigdata_suite(Class::Test)
                .into_iter()
                .take(def.size)
                .collect();
            let pool = WorkPool::new(threads);
            let bytes = encode_pack(
                &build_pack("bench", "bigdata", "class=test", &apps, &pool)
                    .map_err(|e| format!("bench pack: {e}"))?,
            );
            run_samples(batch, samples, |_| {
                black_box(verify_pack(&bytes).expect("bench pack verifies"));
            })
        }
        Stage::SnippetReplay => {
            let apps: Vec<_> = bigdata_suite(Class::Test)
                .into_iter()
                .take(def.size)
                .collect();
            let pool = WorkPool::new(threads);
            let bytes = encode_pack(
                &build_pack("bench", "bigdata", "class=test", &apps, &pool)
                    .map_err(|e| format!("bench pack: {e}"))?,
            );
            let pack = parse_pack(&bytes).map_err(|e| format!("bench pack parse: {e}"))?;
            run_samples(batch, samples, |_| {
                let report = replay_pack(&pack, &pool).expect("bench replay runs");
                assert!(report.all_ok(), "bench replay met its contract");
                black_box(report);
            })
        }
        Stage::ServeLoadEvent => serve_load(true, ServeStat::Mean, def.size, threads, samples)?,
        Stage::ServeLoadBlocking => {
            serve_load(false, ServeStat::Mean, def.size, threads, samples)?
        }
        Stage::ServeLoadEventP99 => serve_load(true, ServeStat::P99, def.size, threads, samples)?,
        Stage::ServeLoadBlockingP99 => {
            serve_load(false, ServeStat::P99, def.size, threads, samples)?
        }
        Stage::ServeLoadEventWall => serve_load(true, ServeStat::Wall, def.size, threads, samples)?,
        Stage::ServeLoadBlockingWall => {
            serve_load(false, ServeStat::Wall, def.size, threads, samples)?
        }
        Stage::SnippetInproc => {
            // The replay gate's baseline: the same codelets and contexts
            // executed straight from the in-process suite, no pack in
            // between. `snippet/replay` must land within 5% of this.
            let apps: Vec<_> = bigdata_suite(Class::Test)
                .into_iter()
                .take(def.size)
                .collect();
            let pool = WorkPool::new(threads);
            run_samples(batch, samples, |_| {
                for app in &apps {
                    for ci in app.extractable() {
                        black_box(
                            snippet_digest(&app.codelets[ci], &app.contexts[ci], &pool)
                                .expect("bench inproc digest"),
                        );
                    }
                }
            })
        }
    };
    Ok(out)
}

/// A per-process scratch directory for store benchmarks.
fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("fgbs-bench-{}-{tag}", std::process::id()))
}

/// Which statistic of a load run a serve stage samples.
#[derive(Debug, Clone, Copy)]
enum ServeStat {
    /// Mean per-request latency.
    Mean,
    /// 99th-percentile per-request latency.
    P99,
    /// Wall-clock nanoseconds per completed request — the reciprocal
    /// of throughput, kept in ns/op so gates and `cmp` read naturally
    /// (lower is better, like every other row).
    Wall,
}

/// Requests each loadgen connection issues per run. Fixed so the
/// `serve/*` row ids (keyed by connection count) stay comparable.
const SERVE_REQUESTS_PER_CONN: usize = 8;

/// One serve-load sample: spin up an in-process server (event loop or
/// blocking thread-per-connection), drive `conns` concurrent clients
/// through `fgbs_serve::loadgen`, and report the chosen statistic.
/// Keep-alive follows the server mode: the event loop is measured with
/// connection reuse (its strength), the blocking baseline with one
/// connection per request (its natural gait).
fn serve_load(
    event_loop: bool,
    stat: ServeStat,
    conns: usize,
    threads: usize,
    samples: usize,
) -> Result<Vec<f64>, String> {
    let dir = bench_dir(if event_loop { "serve-event" } else { "serve-blocking" });
    let store =
        std::sync::Arc::new(Store::open(&dir).map_err(|e| format!("bench serve store: {e}"))?);
    let service = std::sync::Arc::new(Service::new(
        PipelineConfig::fast().with_threads(1),
        store,
    ));
    let tuning = LoopOptions {
        event_loop,
        ..LoopOptions::default()
    };
    let server = Server::start_tuned(
        "127.0.0.1:0",
        threads,
        service,
        ServeOptions::default(),
        tuning,
    )
    .map_err(|e| format!("bench serve bind: {e}"))?;
    let opts = loadgen::LoadOptions {
        conns,
        requests: SERVE_REQUESTS_PER_CONN,
        keep_alive: event_loop,
        target: "/health".to_string(),
    };
    let _ = loadgen::run(server.addr(), &opts); // warm-up
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let report = loadgen::run(server.addr(), &opts);
        if report.ok == 0 {
            return Err("bench serve load: no request completed".to_string());
        }
        out.push(match stat {
            ServeStat::Mean => report.mean_ns(),
            ServeStat::P99 => report.p99_ns() as f64,
            ServeStat::Wall => report.elapsed.as_nanos() as f64 / report.ok as f64,
        });
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barometer::registry::Registry;

    /// Every stage in the built-in registry must actually run. One
    /// sample each keeps this a smoke test, not a benchmark.
    #[test]
    fn every_builtin_stage_produces_finite_samples() {
        for def in &Registry::builtin().benchmarks {
            // The O(n³) scan at n=1024 is too slow for a unit test.
            if def.id.contains("n1024") || def.stage == Stage::GaSelect {
                continue;
            }
            let mut small = def.clone();
            small.batch = small.batch.min(64);
            // Serve rows spin real TCP servers: shrink the client fleet
            // so the smoke test stays a smoke test.
            if small.suite == "serve" {
                small.size = 4;
            }
            let samples = measure(&small, 1, 1).expect("workload runs");
            assert_eq!(samples.len(), 1);
            assert!(samples[0].is_finite() && samples[0] >= 0.0, "{}", def.id);
        }
    }

    #[test]
    fn observations_are_deterministic() {
        assert_eq!(
            observations(16, 14).row(3),
            observations(16, 14).row(3),
            "synthetic data must not depend on run order"
        );
    }
}

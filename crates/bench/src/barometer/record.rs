//! The schema-versioned measurement record.
//!
//! `fgbs bench` emits exactly one record per run: a timestamped JSON
//! document carrying the environment fingerprint and, per benchmark,
//! the raw per-op samples plus derived medians. The codec is strict
//! both ways — the writer renders deterministically (insertion order,
//! shortest-round-trip floats, via `fgbs_trace::Json`) and the parser
//! rejects unknown keys, missing keys, and any schema version other
//! than [`RECORD_SCHEMA`]. Changing the record shape therefore *forces*
//! a version bump and a parser change; a golden-file test pins the
//! rendered bytes.

use fgbs_trace::Json;

/// Record format version. Bump whenever a field is added, removed, or
/// reinterpreted; the parser refuses every other version.
pub const RECORD_SCHEMA: u64 = 1;

/// Where a run happened — used by `cmp` to flag cross-machine
/// comparisons (which the calibration benchmark then normalizes).
#[derive(Debug, Clone, PartialEq)]
pub struct EnvFingerprint {
    /// Hostname (best effort; "unknown" when unreadable).
    pub host: String,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// First `model name` from `/proc/cpuinfo` (best effort).
    pub cpu: String,
    /// Available hardware parallelism.
    pub ncpu: u64,
    /// The fgbs crate version that produced the record.
    pub version: String,
}

impl EnvFingerprint {
    /// Fingerprint the current process environment.
    pub fn capture() -> EnvFingerprint {
        let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .ok()
            .map(|s| s.trim().to_string())
            .or_else(|| std::env::var("HOSTNAME").ok())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|v| v.trim().to_string())
            })
            .unwrap_or_else(|| "unknown".to_string());
        EnvFingerprint {
            host,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpu,
            ncpu: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }

    /// Whether two records plausibly come from the same machine.
    pub fn same_machine(&self, other: &EnvFingerprint) -> bool {
        self.host == other.host && self.cpu == other.cpu && self.arch == other.arch
    }
}

/// One benchmark's measurements: raw per-op samples plus the derived
/// statistics `cmp` consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Registry id the samples belong to.
    pub id: String,
    /// Recorded sample count (`samples_ns.len()`).
    pub iters: u64,
    /// Operations per sample; samples are already per-op.
    pub batch: u64,
    /// Per-op wall nanoseconds, one per sample, in measurement order.
    pub samples_ns: Vec<f64>,
    /// Median of `samples_ns`.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Relative noise floor, percent: `100 · 1.4826 · MAD / median`
    /// (the scaled median absolute deviation — robust to the occasional
    /// scheduler hiccup that a stddev would overweight).
    pub noise_pct: f64,
}

impl BenchResult {
    /// Build a result from raw per-op samples, deriving the statistics.
    ///
    /// # Panics
    ///
    /// Panics on empty or non-finite samples — the runner never
    /// produces either.
    pub fn from_samples(id: impl Into<String>, batch: u64, samples_ns: Vec<f64>) -> BenchResult {
        assert!(!samples_ns.is_empty(), "a benchmark needs >= 1 sample");
        assert!(
            samples_ns.iter().all(|s| s.is_finite() && *s >= 0.0),
            "samples must be finite and non-negative"
        );
        let mut sorted = samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median_ns = median_of_sorted(&sorted);
        let min_ns = sorted[0];
        let p95_ns = sorted[((sorted.len() as f64 * 0.95).ceil() as usize).max(1) - 1];
        let mut dev: Vec<f64> = sorted.iter().map(|s| (s - median_ns).abs()).collect();
        dev.sort_by(|a, b| a.partial_cmp(b).expect("finite deviations"));
        let mad = median_of_sorted(&dev);
        let noise_pct = if median_ns > 0.0 {
            100.0 * 1.4826 * mad / median_ns
        } else {
            0.0
        };
        BenchResult {
            id: id.into(),
            iters: samples_ns.len() as u64,
            batch,
            samples_ns,
            median_ns,
            min_ns,
            p95_ns,
            noise_pct,
        }
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// One timestamped `fgbs bench` run.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Always [`RECORD_SCHEMA`] for records this build writes.
    pub schema: u64,
    /// Unix seconds the run finished.
    pub created_unix: u64,
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Effective worker-thread count substituted for `threads: 0`
    /// registry entries.
    pub threads: u64,
    /// Where the run happened.
    pub env: EnvFingerprint,
    /// One entry per executed benchmark, in registry order.
    pub benchmarks: Vec<BenchResult>,
}

impl Record {
    /// Result lookup by benchmark id.
    pub fn find(&self, id: &str) -> Option<&BenchResult> {
        self.benchmarks.iter().find(|b| b.id == id)
    }

    /// Render the canonical JSON document (no trailing newline).
    pub fn render(&self) -> String {
        let env = Json::obj(vec![
            ("host", Json::str(&self.env.host)),
            ("os", Json::str(&self.env.os)),
            ("arch", Json::str(&self.env.arch)),
            ("cpu", Json::str(&self.env.cpu)),
            ("ncpu", Json::U64(self.env.ncpu)),
            ("version", Json::str(&self.env.version)),
        ]);
        let benchmarks = Json::Arr(
            self.benchmarks
                .iter()
                .map(|b| {
                    Json::obj(vec![
                        ("id", Json::str(&b.id)),
                        ("iters", Json::U64(b.iters)),
                        ("batch", Json::U64(b.batch)),
                        (
                            "samples_ns",
                            Json::Arr(b.samples_ns.iter().map(|s| Json::Num(*s)).collect()),
                        ),
                        ("median_ns", Json::Num(b.median_ns)),
                        ("min_ns", Json::Num(b.min_ns)),
                        ("p95_ns", Json::Num(b.p95_ns)),
                        ("noise_pct", Json::Num(b.noise_pct)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema", Json::U64(self.schema)),
            ("created_unix", Json::U64(self.created_unix)),
            ("mode", Json::str(&self.mode)),
            ("threads", Json::U64(self.threads)),
            ("env", env),
            ("benchmarks", benchmarks),
        ])
        .render()
    }

    /// Parse a record document. Strict: the schema version must be
    /// exactly [`RECORD_SCHEMA`] and every object must carry exactly
    /// the known keys — nothing extra, nothing missing.
    pub fn parse(src: &str) -> Result<Record, String> {
        let doc = Json::parse(src).map_err(|e| format!("record is not valid JSON: {e}"))?;
        expect_keys(
            &doc,
            &["schema", "created_unix", "mode", "threads", "env", "benchmarks"],
            "record",
        )?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("record needs a numeric `schema`")?;
        if schema != RECORD_SCHEMA {
            return Err(format!(
                "unsupported record schema {schema}: this build reads only schema \
                 {RECORD_SCHEMA} — a format change requires bumping RECORD_SCHEMA \
                 and updating the parser"
            ));
        }
        let env_doc = doc.get("env").ok_or("record needs an `env` object")?;
        expect_keys(
            env_doc,
            &["host", "os", "arch", "cpu", "ncpu", "version"],
            "env",
        )?;
        let env_str = |key: &str| -> Result<String, String> {
            env_doc
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("env needs a string `{key}`"))
        };
        let env = EnvFingerprint {
            host: env_str("host")?,
            os: env_str("os")?,
            arch: env_str("arch")?,
            cpu: env_str("cpu")?,
            ncpu: env_doc
                .get("ncpu")
                .and_then(Json::as_u64)
                .ok_or("env needs a numeric `ncpu`")?,
            version: env_str("version")?,
        };
        let entries = doc
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("record needs a `benchmarks` array")?;
        let mut benchmarks = Vec::with_capacity(entries.len());
        for e in entries {
            benchmarks.push(parse_result(e)?);
        }
        Ok(Record {
            schema,
            created_unix: doc
                .get("created_unix")
                .and_then(Json::as_u64)
                .ok_or("record needs a numeric `created_unix`")?,
            mode: doc
                .get("mode")
                .and_then(Json::as_str)
                .ok_or("record needs a string `mode`")?
                .to_string(),
            threads: doc
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or("record needs a numeric `threads`")?,
            env,
            benchmarks,
        })
    }
}

fn parse_result(e: &Json) -> Result<BenchResult, String> {
    expect_keys(
        e,
        &[
            "id",
            "iters",
            "batch",
            "samples_ns",
            "median_ns",
            "min_ns",
            "p95_ns",
            "noise_pct",
        ],
        "benchmark",
    )?;
    let id = e
        .get("id")
        .and_then(Json::as_str)
        .ok_or("benchmark needs a string `id`")?
        .to_string();
    let num = |key: &str| -> Result<f64, String> {
        e.get(key)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite())
            .ok_or_else(|| format!("`{id}` needs a finite numeric `{key}`"))
    };
    let samples_ns: Vec<f64> = e
        .get("samples_ns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("`{id}` needs a `samples_ns` array"))?
        .iter()
        .map(|s| {
            s.as_f64()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("`{id}` has a non-finite sample"))
        })
        .collect::<Result<_, _>>()?;
    let iters = e
        .get("iters")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{id}` needs an integer `iters`"))?;
    if iters != samples_ns.len() as u64 || iters == 0 {
        return Err(format!(
            "`{id}`: iters {iters} disagrees with {} recorded samples",
            samples_ns.len()
        ));
    }
    let median_ns = num("median_ns")?;
    let min_ns = num("min_ns")?;
    let p95_ns = num("p95_ns")?;
    let noise_pct = num("noise_pct")?;
    Ok(BenchResult {
        id,
        iters,
        batch: e
            .get("batch")
            .and_then(Json::as_u64)
            .filter(|b| *b >= 1)
            .ok_or("benchmark needs a positive integer `batch`")?,
        samples_ns,
        median_ns,
        min_ns,
        p95_ns,
        noise_pct,
    })
}

fn expect_keys(obj: &Json, allowed: &[&str], what: &str) -> Result<(), String> {
    let members = match obj {
        Json::Obj(members) => members,
        _ => return Err(format!("{what} must be a JSON object")),
    };
    for (k, _) in members {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "{what} has unknown key `{k}` — a schema change requires bumping \
                 RECORD_SCHEMA (currently {RECORD_SCHEMA})"
            ));
        }
    }
    for key in allowed {
        if obj.get(key).is_none() {
            return Err(format!("{what} is missing key `{key}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record {
            schema: RECORD_SCHEMA,
            created_unix: 1_754_600_000,
            mode: "quick".into(),
            threads: 1,
            env: EnvFingerprint {
                host: "ci".into(),
                os: "linux".into(),
                arch: "x86_64".into(),
                cpu: "Test CPU".into(),
                ncpu: 8,
                version: "0.1.0".into(),
            },
            benchmarks: vec![
                BenchResult::from_samples("calibration/spin/n262144/t1", 8, vec![100.0, 101.5, 99.25]),
                BenchResult::from_samples("trace/span/n1/t1", 50000, vec![21.125, 20.5]),
            ],
        }
    }

    #[test]
    fn round_trips_losslessly() {
        let r = sample_record();
        let rendered = r.render();
        let parsed = Record::parse(&rendered).expect("own render parses");
        assert_eq!(parsed, r);
        assert_eq!(parsed.render(), rendered, "render-stable");
    }

    #[test]
    fn stats_are_robust() {
        let b = BenchResult::from_samples("x", 1, vec![10.0, 11.0, 9.0, 10.5, 1000.0]);
        assert_eq!(b.median_ns, 10.5);
        assert_eq!(b.min_ns, 9.0);
        assert_eq!(b.p95_ns, 1000.0);
        // The outlier barely moves the MAD-based noise floor.
        assert!(b.noise_pct < 15.0, "noise {}", b.noise_pct);

        let even = BenchResult::from_samples("y", 1, vec![1.0, 3.0]);
        assert_eq!(even.median_ns, 2.0);
    }

    #[test]
    fn rejects_other_schemas_and_unknown_keys() {
        let r = sample_record();
        let v2 = r.render().replacen("\"schema\":1", "\"schema\":2", 1);
        let err = Record::parse(&v2).unwrap_err();
        assert!(err.contains("schema 2"), "{err}");

        let extra = r
            .render()
            .replacen("\"mode\":\"quick\"", "\"mode\":\"quick\",\"extra\":1", 1);
        let err = Record::parse(&extra).unwrap_err();
        assert!(err.contains("unknown key `extra`"), "{err}");

        let missing = r.render().replacen("\"mode\":\"quick\",", "", 1);
        assert!(Record::parse(&missing).is_err());
    }

    #[test]
    fn rejects_inconsistent_iters() {
        let r = sample_record();
        let bad = r.render().replacen("\"iters\":3", "\"iters\":4", 1);
        assert!(Record::parse(&bad).unwrap_err().contains("disagrees"));
    }

    #[test]
    fn env_capture_is_populated() {
        let env = EnvFingerprint::capture();
        assert!(!env.host.is_empty());
        assert!(env.ncpu >= 1);
        assert!(env.same_machine(&env.clone()));
    }
}

//! The noise-aware record comparison engine behind `fgbs bench cmp`.
//!
//! Two records are aligned by benchmark id; each pair gets a
//! ratio-of-medians verdict against a per-benchmark threshold derived
//! from the *recorded* noise floors (the scaled-MAD `noise_pct` of both
//! runs' samples):
//!
//! ```text
//! threshold% = max(min_change%, noise_mult × max(noise_old, noise_new))
//! ```
//!
//! Machine-speed drift is cancelled to first order by normalizing every
//! ratio with the calibration benchmark's ratio (a fixed splitmix spin
//! both records carry) — so a committed baseline from one host still
//! gates a CI runner of a different speed. Cross-machine comparisons
//! are flagged in the report either way.
//!
//! Benchmarks present on only one side are *reported*, never silently
//! skipped; `strict` turns them into a failure.

use super::record::Record;

/// Tunables for [`compare`].
#[derive(Debug, Clone)]
pub struct CmpOptions {
    /// Smallest change (percent) ever considered a regression, however
    /// quiet the samples were.
    pub min_change_pct: f64,
    /// Multiplier on the recorded noise floor.
    pub noise_mult: f64,
    /// Fail on missing/added benchmarks too, not just regressions.
    pub strict: bool,
}

impl Default for CmpOptions {
    fn default() -> CmpOptions {
        CmpOptions {
            min_change_pct: 10.0,
            noise_mult: 4.0,
            strict: false,
        }
    }
}

/// Per-benchmark comparison verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise-aware threshold.
    Unchanged,
    /// Faster beyond the threshold.
    Faster,
    /// Slower beyond the threshold.
    Regressed,
}

/// The per-benchmark threshold, percent.
pub fn threshold_pct(noise_old_pct: f64, noise_new_pct: f64, opts: &CmpOptions) -> f64 {
    (opts.noise_mult * noise_old_pct.max(noise_new_pct)).max(opts.min_change_pct)
}

/// The pure decision function: classify a (normalized) new/old median
/// ratio against a threshold. Monotone in the ratio for any fixed
/// threshold — a larger ratio can never downgrade `Regressed`.
pub fn decide(norm_ratio: f64, threshold_pct: f64) -> Verdict {
    if !norm_ratio.is_finite() {
        return Verdict::Regressed;
    }
    let bound = 1.0 + threshold_pct.max(0.0) / 100.0;
    if norm_ratio > bound {
        Verdict::Regressed
    } else if norm_ratio < 1.0 / bound {
        Verdict::Faster
    } else {
        Verdict::Unchanged
    }
}

/// One aligned benchmark pair.
#[derive(Debug, Clone)]
pub struct CmpRow {
    /// Benchmark id.
    pub id: String,
    /// Old median, per-op ns.
    pub old_ns: f64,
    /// New median, per-op ns.
    pub new_ns: f64,
    /// Raw `new / old` ratio of medians.
    pub ratio: f64,
    /// Ratio after calibration normalization (== `ratio` when no
    /// calibration benchmark is shared).
    pub norm_ratio: f64,
    /// The threshold this row was judged against, percent.
    pub threshold_pct: f64,
    /// The verdict on `norm_ratio`.
    pub verdict: Verdict,
}

/// The full comparison result.
#[derive(Debug, Clone)]
pub struct CmpReport {
    /// Aligned pairs, in old-record order.
    pub rows: Vec<CmpRow>,
    /// Ids present only in the old record.
    pub missing: Vec<String>,
    /// Ids present only in the new record.
    pub added: Vec<String>,
    /// The shared calibration benchmark's new/old ratio, when present.
    pub calibration_ratio: Option<f64>,
    /// The records' environment fingerprints differ.
    pub cross_machine: bool,
}

impl CmpReport {
    /// Rows judged `Regressed`.
    pub fn regressions(&self) -> Vec<&CmpRow> {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regressed).collect()
    }

    /// No regressions (and, under `strict`, nothing unmatched).
    pub fn failure(&self, opts: &CmpOptions) -> Option<String> {
        let regressed = self.regressions();
        if !regressed.is_empty() {
            let ids: Vec<&str> = regressed.iter().map(|r| r.id.as_str()).collect();
            return Some(format!(
                "{} benchmark(s) regressed beyond the noise floor: {}",
                ids.len(),
                ids.join(", ")
            ));
        }
        if opts.strict && (!self.missing.is_empty() || !self.added.is_empty()) {
            return Some(format!(
                "record contents diverged (strict): {} missing, {} added",
                self.missing.len(),
                self.added.len()
            ));
        }
        None
    }

    /// Render the human-readable comparison table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if self.cross_machine {
            let _ = writeln!(
                s,
                "note: records come from different machines; ratios are normalized \
                 by the calibration benchmark ({})",
                match self.calibration_ratio {
                    Some(c) => format!("machine-speed ratio {c:.3}"),
                    None => "MISSING — raw ratios only".to_string(),
                }
            );
        } else if let Some(c) = self.calibration_ratio {
            let _ = writeln!(s, "calibration ratio {c:.3} (same machine)");
        }
        let id_w = self
            .rows
            .iter()
            .map(|r| r.id.len())
            .max()
            .unwrap_or(9)
            .max(9);
        let _ = writeln!(
            s,
            "{:<id_w$}  {:>12} {:>12} {:>7} {:>7} {:>7}  verdict",
            "benchmark", "old", "new", "ratio", "adj", "thresh"
        );
        for r in &self.rows {
            let verdict = match r.verdict {
                Verdict::Unchanged => "ok",
                Verdict::Faster => "faster",
                Verdict::Regressed => "REGRESSED",
            };
            let _ = writeln!(
                s,
                "{:<id_w$}  {:>12} {:>12} {:>7.3} {:>7.3} {:>6.1}%  {verdict}",
                r.id,
                super::fmt_ns(r.old_ns),
                super::fmt_ns(r.new_ns),
                r.ratio,
                r.norm_ratio,
                r.threshold_pct,
            );
        }
        for id in &self.missing {
            let _ = writeln!(s, "missing from new record: {id}");
        }
        for id in &self.added {
            let _ = writeln!(s, "only in new record:      {id}");
        }
        let n_reg = self.regressions().len();
        let n_fast = self.rows.iter().filter(|r| r.verdict == Verdict::Faster).count();
        let _ = writeln!(
            s,
            "{} compared: {} regressed, {} faster, {} unchanged",
            self.rows.len(),
            n_reg,
            n_fast,
            self.rows.len() - n_reg - n_fast
        );
        s
    }
}

/// Compare two parsed records.
pub fn compare(old: &Record, new: &Record, opts: &CmpOptions) -> CmpReport {
    let calibration_ratio = old
        .benchmarks
        .iter()
        .find(|b| b.id.starts_with("calibration/") && b.median_ns > 0.0)
        .and_then(|o| new.find(&o.id).map(|n| n.median_ns / o.median_ns))
        .filter(|c| c.is_finite() && *c > 0.0);

    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for o in &old.benchmarks {
        let n = match new.find(&o.id) {
            Some(n) => n,
            None => {
                missing.push(o.id.clone());
                continue;
            }
        };
        let ratio = if o.median_ns > 0.0 {
            n.median_ns / o.median_ns
        } else if n.median_ns == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
        let norm_ratio = match calibration_ratio {
            Some(c) => ratio / c,
            None => ratio,
        };
        let threshold = threshold_pct(o.noise_pct, n.noise_pct, opts);
        rows.push(CmpRow {
            id: o.id.clone(),
            old_ns: o.median_ns,
            new_ns: n.median_ns,
            ratio,
            norm_ratio,
            threshold_pct: threshold,
            verdict: decide(norm_ratio, threshold),
        });
    }
    let added = new
        .benchmarks
        .iter()
        .filter(|n| old.find(&n.id).is_none())
        .map(|n| n.id.clone())
        .collect();
    CmpReport {
        rows,
        missing,
        added,
        calibration_ratio,
        cross_machine: !old.env.same_machine(&new.env),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barometer::record::{BenchResult, EnvFingerprint, Record, RECORD_SCHEMA};

    fn record(pairs: &[(&str, f64)]) -> Record {
        Record {
            schema: RECORD_SCHEMA,
            created_unix: 1,
            mode: "quick".into(),
            threads: 1,
            env: EnvFingerprint {
                host: "h".into(),
                os: "linux".into(),
                arch: "x86_64".into(),
                cpu: "c".into(),
                ncpu: 4,
                version: "0.1.0".into(),
            },
            benchmarks: pairs
                .iter()
                .map(|(id, ns)| {
                    BenchResult::from_samples(
                        *id,
                        1,
                        vec![*ns, *ns * 1.01, *ns * 0.99],
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn same_record_is_clean() {
        let a = record(&[("calibration/spin/n1/t1", 100.0), ("x/y/n1/t1", 500.0)]);
        let report = compare(&a, &a, &CmpOptions::default());
        assert!(report.failure(&CmpOptions::default()).is_none());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
        assert_eq!(report.calibration_ratio, Some(1.0));
        assert!(!report.cross_machine);
    }

    #[test]
    fn detects_a_25_percent_slowdown() {
        let old = record(&[("calibration/spin/n1/t1", 100.0), ("x/y/n1/t1", 400.0)]);
        let new = record(&[("calibration/spin/n1/t1", 100.0), ("x/y/n1/t1", 520.0)]);
        let report = compare(&old, &new, &CmpOptions::default());
        let row = report.rows.iter().find(|r| r.id == "x/y/n1/t1").unwrap();
        assert_eq!(row.verdict, Verdict::Regressed);
        assert!(report.failure(&CmpOptions::default()).is_some());
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn calibration_cancels_machine_speed() {
        // Every benchmark — including the spin — got 2x slower: a
        // slower machine, not a regression.
        let old = record(&[("calibration/spin/n1/t1", 100.0), ("x/y/n1/t1", 400.0)]);
        let new = record(&[("calibration/spin/n1/t1", 200.0), ("x/y/n1/t1", 800.0)]);
        let report = compare(&old, &new, &CmpOptions::default());
        assert_eq!(report.calibration_ratio, Some(2.0));
        assert!(report.failure(&CmpOptions::default()).is_none());
        // A genuine 1.5x regression on top of the 2x machine drift
        // still surfaces after normalization.
        let new2 = record(&[("calibration/spin/n1/t1", 200.0), ("x/y/n1/t1", 1200.0)]);
        let report2 = compare(&old, &new2, &CmpOptions::default());
        assert_eq!(report2.rows[1].verdict, Verdict::Regressed);
    }

    #[test]
    fn missing_and_added_are_reported_and_strict_fails() {
        let old = record(&[("a/a/n1/t1", 10.0), ("b/b/n1/t1", 10.0)]);
        let new = record(&[("a/a/n1/t1", 10.0), ("c/c/n1/t1", 10.0)]);
        let report = compare(&old, &new, &CmpOptions::default());
        assert_eq!(report.missing, vec!["b/b/n1/t1".to_string()]);
        assert_eq!(report.added, vec!["c/c/n1/t1".to_string()]);
        assert!(report.failure(&CmpOptions::default()).is_none());
        let strict = CmpOptions {
            strict: true,
            ..CmpOptions::default()
        };
        assert!(report.failure(&strict).is_some());
        let rendered = report.render();
        assert!(rendered.contains("missing from new record: b/b/n1/t1"));
        assert!(rendered.contains("only in new record:      c/c/n1/t1"));
    }

    #[test]
    fn decision_function_shape() {
        assert_eq!(decide(1.0, 10.0), Verdict::Unchanged);
        assert_eq!(decide(1.09, 10.0), Verdict::Unchanged);
        assert_eq!(decide(1.11, 10.0), Verdict::Regressed);
        assert_eq!(decide(0.92, 10.0), Verdict::Unchanged);
        assert_eq!(decide(0.90, 10.0), Verdict::Faster);
        assert_eq!(decide(f64::NAN, 10.0), Verdict::Regressed);
        assert_eq!(decide(f64::INFINITY, 10.0), Verdict::Regressed);
        // The floor and the noise multiplier are both honoured.
        let opts = CmpOptions::default();
        assert_eq!(threshold_pct(0.0, 0.0, &opts), 10.0);
        assert_eq!(threshold_pct(1.0, 5.0, &opts), 20.0);
    }
}

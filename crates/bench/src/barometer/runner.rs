//! The registry runner behind `fgbs bench`.
//!
//! Selects entries (substring `--filter`, `--quick` skips `full_only`
//! ones), executes each workload, and assembles one [`Record`] plus the
//! outcomes of every in-run perf gate. Each executed benchmark is
//! wrapped in a `bench.case` span carrying only deterministic arguments
//! (id, sample count), so a `--trace`d bench run keeps the repo's
//! thread-invariant digest contract.

use std::time::{SystemTime, UNIX_EPOCH};

use super::record::{BenchResult, EnvFingerprint, Record, RECORD_SCHEMA};
use super::registry::{BenchDef, Registry};
use super::workloads;

/// Run-time options for [`run_registry`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Use each entry's `quick_iters` and skip `full_only` entries.
    pub quick: bool,
    /// Substring filter over benchmark ids.
    pub filter: Option<String>,
    /// Effective worker threads for `threads: 0` entries (0 ⇒ 1).
    pub threads: usize,
}

/// The verdict of one declared perf gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Gated benchmark id.
    pub id: String,
    /// Human description of the bound.
    pub what: String,
    /// Whether the bound held (skipped gates count as passed).
    pub pass: bool,
    /// The gate could not be evaluated (its `vs` entry was filtered
    /// out or is `full_only` in a quick run).
    pub skipped: bool,
    /// Measured detail for the report.
    pub detail: String,
}

/// A completed run: the record plus its gate verdicts.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The measurement record (what `--out` writes).
    pub record: Record,
    /// One outcome per declared gate on an executed benchmark.
    pub gates: Vec<GateOutcome>,
}

impl RunOutput {
    /// Ids of gates whose bound failed.
    pub fn failed_gates(&self) -> Vec<&GateOutcome> {
        self.gates.iter().filter(|g| !g.pass).collect()
    }
}

/// Execute every selected registry entry and collect one record.
pub fn run_registry(reg: &Registry, opts: &RunOptions) -> Result<RunOutput, String> {
    let effective_threads = opts.threads.max(1);
    let selected: Vec<&BenchDef> = reg
        .benchmarks
        .iter()
        .filter(|b| !(opts.quick && b.full_only))
        .filter(|b| opts.filter.as_deref().is_none_or(|f| b.id.contains(f)))
        .collect();
    if selected.is_empty() {
        return Err(match &opts.filter {
            Some(f) => format!("no benchmark id contains `{f}`"),
            None => "the registry selected no benchmarks".to_string(),
        });
    }

    let mut benchmarks = Vec::with_capacity(selected.len());
    for def in &selected {
        let samples_wanted = def.samples(opts.quick);
        let mut span = fgbs_trace::span("bench.case");
        span.arg_str("id", def.id.clone());
        span.arg_u64("samples", samples_wanted as u64);
        fgbs_trace::counter("bench.cases", 1);
        let samples = workloads::measure(def, samples_wanted, effective_threads)?;
        drop(span);
        benchmarks.push(BenchResult::from_samples(def.id.clone(), def.batch, samples));
    }

    let record = Record {
        schema: RECORD_SCHEMA,
        created_unix: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        mode: if opts.quick { "quick" } else { "full" }.to_string(),
        threads: effective_threads as u64,
        env: EnvFingerprint::capture(),
        benchmarks,
    };
    let gates = check_gates(&selected, &record);
    Ok(RunOutput { record, gates })
}

/// Evaluate the absolute (`max_ns`) and ratio (`gate`) bounds of every
/// executed entry against the freshly recorded medians.
fn check_gates(selected: &[&BenchDef], record: &Record) -> Vec<GateOutcome> {
    let mut out = Vec::new();
    for def in selected {
        let mine = match record.find(&def.id) {
            Some(r) => r,
            None => continue,
        };
        if let Some(max_ns) = def.max_ns {
            out.push(GateOutcome {
                id: def.id.clone(),
                what: format!("median <= {max_ns} ns/op"),
                pass: mine.median_ns <= max_ns as f64,
                skipped: false,
                detail: format!("measured {:.1} ns/op", mine.median_ns),
            });
        }
        if let Some(g) = &def.gate {
            match record.find(&g.vs) {
                Some(vs) if vs.median_ns > 0.0 => {
                    let ratio = mine.median_ns / vs.median_ns;
                    out.push(GateOutcome {
                        id: def.id.clone(),
                        what: format!("median <= {} x `{}`", g.max_ratio, g.vs),
                        pass: ratio <= g.max_ratio,
                        skipped: false,
                        detail: format!("measured ratio {ratio:.3}"),
                    });
                }
                _ => out.push(GateOutcome {
                    id: def.id.clone(),
                    what: format!("median <= {} x `{}`", g.max_ratio, g.vs),
                    pass: true,
                    skipped: true,
                    detail: format!("skipped: `{}` was not measured in this run", g.vs),
                }),
            }
        }
    }
    out
}

/// Human-readable run report: per-benchmark medians and gate verdicts.
pub fn render_report(out: &RunOutput) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let id_w = out
        .record
        .benchmarks
        .iter()
        .map(|b| b.id.len())
        .max()
        .unwrap_or(9)
        .max(9);
    let _ = writeln!(
        s,
        "{:<id_w$}  {:>5}  {:>12} {:>12} {:>12} {:>8}",
        "benchmark", "iters", "median", "min", "p95", "noise"
    );
    for b in &out.record.benchmarks {
        let _ = writeln!(
            s,
            "{:<id_w$}  {:>5}  {:>12} {:>12} {:>12} {:>7.1}%",
            b.id,
            b.iters,
            super::fmt_ns(b.median_ns),
            super::fmt_ns(b.min_ns),
            super::fmt_ns(b.p95_ns),
            b.noise_pct,
        );
    }
    if !out.gates.is_empty() {
        let _ = writeln!(s, "\ngates:");
        for g in &out.gates {
            let mark = if g.skipped {
                "SKIP"
            } else if g.pass {
                "ok"
            } else {
                "FAIL"
            };
            let _ = writeln!(s, "  [{mark:>4}] {}: {} ({})", g.id, g.what, g.detail);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barometer::registry::Registry;

    fn tiny_registry() -> Registry {
        Registry::parse(
            r#"{"schema":1,"benchmarks":[
                {"id":"calibration/spin/n4096/t1","suite":"calibration","stage":"calibrate",
                 "size":4096,"threads":1,"iters":5,"quick_iters":3,"batch":4},
                {"id":"fault/probe/n1/t1","suite":"fault","stage":"fault_probe",
                 "size":1,"threads":1,"iters":5,"quick_iters":3,"batch":512,"max_ns":1000},
                {"id":"slow/only/n1/t1","suite":"slow","stage":"calibrate",
                 "size":1,"threads":1,"iters":2,"quick_iters":1,"full_only":true,
                 "gate":{"vs":"calibration/spin/n4096/t1","max_ratio":1.0}}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn quick_run_skips_full_only_and_records_everything_else() {
        let out = run_registry(
            &tiny_registry(),
            &RunOptions {
                quick: true,
                filter: None,
                threads: 1,
            },
        )
        .unwrap();
        let ids: Vec<&str> = out.record.benchmarks.iter().map(|b| b.id.as_str()).collect();
        assert_eq!(ids, ["calibration/spin/n4096/t1", "fault/probe/n1/t1"]);
        assert_eq!(out.record.mode, "quick");
        assert!(out.record.benchmarks.iter().all(|b| b.iters == 3));
        assert!(out.record.created_unix > 0);
        // The probe gate was evaluated against real numbers.
        let probe = out.gates.iter().find(|g| g.id.contains("probe")).unwrap();
        assert!(!probe.skipped);
        let report = render_report(&out);
        assert!(report.contains("fault/probe"));
        assert!(report.contains("gates:"));
    }

    #[test]
    fn filter_selects_by_substring_and_rejects_no_match() {
        let out = run_registry(
            &tiny_registry(),
            &RunOptions {
                quick: true,
                filter: Some("calibration".into()),
                threads: 1,
            },
        )
        .unwrap();
        assert_eq!(out.record.benchmarks.len(), 1);
        assert!(run_registry(
            &tiny_registry(),
            &RunOptions {
                quick: true,
                filter: Some("nonexistent".into()),
                threads: 1,
            },
        )
        .is_err());
    }

    #[test]
    fn full_run_evaluates_ratio_gates_and_skips_unmeasured_vs() {
        // Full mode includes `slow/only`, whose gate target *is*
        // measured; filtering the target away must mark it skipped.
        let full = run_registry(
            &tiny_registry(),
            &RunOptions {
                quick: false,
                filter: None,
                threads: 1,
            },
        )
        .unwrap();
        let gate = full.gates.iter().find(|g| g.id == "slow/only/n1/t1").unwrap();
        assert!(!gate.skipped);

        let filtered = run_registry(
            &tiny_registry(),
            &RunOptions {
                quick: false,
                filter: Some("slow".into()),
                threads: 1,
            },
        )
        .unwrap();
        let gate = filtered.gates.iter().find(|g| g.id == "slow/only/n1/t1").unwrap();
        assert!(gate.skipped && gate.pass);
    }
}

//! Property-based invariants of the barometer record codec and the
//! `bench cmp` engine: lossless round-trips, monotone thresholds, clean
//! self-comparison, and no silently dropped benchmarks.

use std::collections::HashSet;

use fgbs_bench::barometer::{
    compare, decide, threshold_pct, BenchResult, CmpOptions, EnvFingerprint, Record, Verdict,
    RECORD_SCHEMA,
};
use proptest::prelude::*;

const ID_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/_.-";

fn id_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..ID_CHARS.len(), 1..16)
        .prop_map(|ix| ix.into_iter().map(|i| ID_CHARS[i] as char).collect())
}

fn fixed_env() -> EnvFingerprint {
    EnvFingerprint {
        host: "prop".into(),
        os: "linux".into(),
        arch: "x86_64".into(),
        cpu: "prop cpu".into(),
        ncpu: 4,
        version: "0.1.0".into(),
    }
}

fn record_strategy() -> impl Strategy<Value = Record> {
    let entry = (
        id_strategy(),
        proptest::collection::vec(0.5f64..5e6, 1..8),
        1u64..1000,
    );
    (proptest::collection::vec(entry, 1..10), any::<bool>(), 1u64..9).prop_map(
        |(entries, quick, threads)| {
            // Registry ids are unique by construction; mirror that here.
            let mut seen = HashSet::new();
            let benchmarks = entries
                .into_iter()
                .filter(|(id, _, _)| seen.insert(id.clone()))
                .map(|(id, samples, batch)| BenchResult::from_samples(id, batch, samples))
                .collect();
            Record {
                schema: RECORD_SCHEMA,
                created_unix: 1_754_000_000 + threads,
                mode: if quick { "quick" } else { "full" }.into(),
                threads,
                env: fixed_env(),
                benchmarks,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_round_trip_is_lossless(rec in record_strategy()) {
        let rendered = rec.render();
        let parsed = Record::parse(&rendered).expect("own render must parse");
        prop_assert_eq!(&parsed, &rec, "parse(render(r)) == r");
        prop_assert_eq!(parsed.render(), rendered, "render is stable");
    }

    #[test]
    fn verdicts_are_monotone_in_the_regression_ratio(
        a in 0.01f64..4.0,
        b in 0.01f64..4.0,
        t in 0.0f64..100.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let rank = |v: Verdict| match v {
            Verdict::Faster => 0,
            Verdict::Unchanged => 1,
            Verdict::Regressed => 2,
        };
        // A larger ratio can only move the verdict toward Regressed.
        prop_assert!(rank(decide(lo, t)) <= rank(decide(hi, t)));
    }

    #[test]
    fn threshold_honours_floor_and_noise(
        n1 in 0.0f64..50.0,
        n2 in 0.0f64..50.0,
        floor in 0.0f64..30.0,
        mult in 0.5f64..8.0,
    ) {
        let opts = CmpOptions { min_change_pct: floor, noise_mult: mult, strict: false };
        let t = threshold_pct(n1, n2, &opts);
        prop_assert!(t >= floor, "never below the change floor");
        prop_assert!(t >= mult * n1.max(n2) - 1e-9, "scales with the worse noise");
        // Noisier samples can only widen the threshold.
        prop_assert!(threshold_pct(n1 * 2.0, n2, &opts) >= t);
        prop_assert!(threshold_pct(n1, n2 * 2.0, &opts) >= t);
    }

    #[test]
    fn comparing_a_record_with_itself_is_clean(rec in record_strategy()) {
        let opts = CmpOptions { strict: true, ..CmpOptions::default() };
        let report = compare(&rec, &rec, &opts);
        prop_assert!(report.failure(&opts).is_none(), "cmp(a, a) never fails");
        prop_assert_eq!(report.rows.len(), rec.benchmarks.len());
        prop_assert!(report.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
        prop_assert!(report.missing.is_empty());
        prop_assert!(report.added.is_empty());
    }

    #[test]
    fn unmatched_benchmarks_are_reported_not_skipped(
        old in record_strategy(),
        new in record_strategy(),
    ) {
        let report = compare(&old, &new, &CmpOptions::default());
        for o in &old.benchmarks {
            let matched = new.find(&o.id).is_some();
            prop_assert_eq!(matched, report.rows.iter().any(|r| r.id == o.id));
            prop_assert_eq!(!matched, report.missing.contains(&o.id));
        }
        for n in &new.benchmarks {
            prop_assert_eq!(old.find(&n.id).is_none(), report.added.contains(&n.id));
        }
        // Every old benchmark lands in exactly one bucket.
        prop_assert_eq!(report.rows.len() + report.missing.len(), old.benchmarks.len());
        // Divergent contents are a strict failure, never a silent skip.
        if !report.missing.is_empty() || !report.added.is_empty() {
            let strict = CmpOptions { strict: true, ..CmpOptions::default() };
            prop_assert!(compare(&old, &new, &strict).failure(&strict).is_some());
        }
    }
}

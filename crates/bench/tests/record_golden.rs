//! Golden-file pin of the schema-1 record format.
//!
//! The committed fixture is the byte-exact render of a fixed record. If
//! this test fails after a code change, the on-disk record format
//! changed: bump `RECORD_SCHEMA`, update the parser to reject the old
//! shape, and regenerate the fixture with
//! `UPDATE_GOLDEN=1 cargo test -p fgbs-bench --test record_golden`.

use std::path::PathBuf;

use fgbs_bench::barometer::{BenchResult, EnvFingerprint, Record, RECORD_SCHEMA};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/record_v1.json")
}

/// The pinned record: fixed values, every field exercised.
fn pinned_record() -> Record {
    Record {
        schema: RECORD_SCHEMA,
        created_unix: 1_754_600_000,
        mode: "quick".into(),
        threads: 2,
        env: EnvFingerprint {
            host: "golden-ci".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            cpu: "Pinned CPU @ 2.40GHz".into(),
            ncpu: 8,
            version: "0.1.0".into(),
        },
        benchmarks: vec![
            BenchResult::from_samples(
                "calibration/spin/n262144/t1",
                8,
                vec![1200.5, 1180.25, 1215.0],
            ),
            BenchResult::from_samples("trace/span/n1/t1", 50000, vec![21.125, 20.5, 22.0]),
        ],
    }
}

#[test]
fn golden_record_fixture_is_byte_exact_and_parses() {
    let rendered = pinned_record().render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(fixture_path(), &rendered).expect("write fixture");
    }
    let fixture = std::fs::read_to_string(fixture_path()).expect("committed fixture exists");
    assert_eq!(
        fixture, rendered,
        "the record wire format changed: bump RECORD_SCHEMA (currently \
         {RECORD_SCHEMA}) and regenerate the fixture with UPDATE_GOLDEN=1"
    );

    // The committed fixture must parse back to the exact same record.
    let parsed = Record::parse(&fixture).expect("committed fixture parses");
    assert_eq!(parsed, pinned_record());
    assert_eq!(parsed.render(), fixture, "round-trip is byte-stable");
}

#[test]
fn foreign_schema_versions_are_refused() {
    let fixture = std::fs::read_to_string(fixture_path()).expect("committed fixture exists");
    let v2 = fixture.replacen("\"schema\":1", "\"schema\":2", 1);
    let err = Record::parse(&v2).expect_err("schema 2 must be rejected");
    assert!(err.contains("RECORD_SCHEMA"), "{err}");

    // Sneaking in a field without a version bump is also refused.
    let widened = fixture.replacen(
        "\"mode\":\"quick\"",
        "\"mode\":\"quick\",\"comment\":\"x\"",
        1,
    );
    let err = Record::parse(&widened).expect_err("unknown keys must be rejected");
    assert!(err.contains("unknown key"), "{err}");
}

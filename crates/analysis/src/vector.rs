//! Feature vectors and matrices.

use fgbs_matrix::Matrix;
use serde::{Deserialize, Serialize};

use crate::catalog::{N_FEATURES, N_STATIC};

/// A boolean mask over the 76 features (the genome of the paper's GA).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureMask {
    bits: Vec<bool>,
}

impl FeatureMask {
    /// Mask selecting every feature.
    pub fn all() -> FeatureMask {
        FeatureMask {
            bits: vec![true; N_FEATURES],
        }
    }

    /// Mask selecting no feature.
    pub fn none() -> FeatureMask {
        FeatureMask {
            bits: vec![false; N_FEATURES],
        }
    }

    /// Mask from a list of feature ids.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn from_ids(ids: &[usize]) -> FeatureMask {
        let mut m = FeatureMask::none();
        for &i in ids {
            assert!(i < N_FEATURES, "feature id {i} out of range");
            m.bits[i] = true;
        }
        m
    }

    /// Mask from raw booleans (must have length 76).
    ///
    /// # Panics
    ///
    /// Panics on wrong length.
    pub fn from_bits(bits: Vec<bool>) -> FeatureMask {
        assert_eq!(bits.len(), N_FEATURES);
        FeatureMask { bits }
    }

    /// Is feature `i` selected?
    pub fn contains(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    /// Selected feature ids, ascending.
    pub fn ids(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// Number of selected features.
    pub fn len(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// True if no feature is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The 76-dimensional signature of one codelet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Compose from the static and dynamic halves.
    ///
    /// # Panics
    ///
    /// Panics if the halves do not have the catalog's sizes.
    pub fn compose(static_part: Vec<f64>, dynamic_part: Vec<f64>) -> FeatureVector {
        assert_eq!(static_part.len(), N_STATIC);
        assert_eq!(static_part.len() + dynamic_part.len(), N_FEATURES);
        let mut values = static_part;
        values.extend(dynamic_part);
        FeatureVector { values }
    }

    /// Raw values, indexed by feature id.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of feature `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Project onto a mask, keeping selected features in id order.
    pub fn project(&self, mask: &FeatureMask) -> Vec<f64> {
        mask.ids().iter().map(|&i| self.values[i]).collect()
    }
}

/// Feature vectors for a set of codelets (rows) — the input of Step C.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureMatrix {
    names: Vec<String>,
    rows: Vec<FeatureVector>,
}

impl FeatureMatrix {
    /// Empty matrix.
    pub fn new() -> FeatureMatrix {
        FeatureMatrix::default()
    }

    /// Append one codelet's signature.
    pub fn push(&mut self, name: impl Into<String>, row: FeatureVector) {
        self.names.push(name.into());
        self.rows.push(row);
    }

    /// Number of codelets.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no codelet has been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Codelet names, row order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Row by index.
    pub fn row(&self, i: usize) -> &FeatureVector {
        &self.rows[i]
    }

    /// Project every row onto `mask`: the raw observation matrix handed to
    /// the clustering step, in contiguous row-major storage.
    pub fn project(&self, mask: &FeatureMask) -> Matrix {
        let ids = mask.ids();
        let mut data = Vec::with_capacity(self.rows.len() * ids.len());
        for r in &self.rows {
            data.extend(ids.iter().map(|&i| r.values[i]));
        }
        Matrix::from_flat(self.rows.len(), ids.len(), data)
    }

    /// The full raw observation matrix — every feature column, row per
    /// codelet. The GA's incremental fitness path normalises this once
    /// and projects columns per mask.
    pub fn matrix(&self) -> Matrix {
        let cols = if self.rows.is_empty() { 0 } else { self.rows[0].values.len() };
        let mut data = Vec::with_capacity(self.rows.len() * cols);
        for r in &self.rows {
            data.extend_from_slice(&r.values);
        }
        Matrix::from_flat(self.rows.len(), cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(seed: f64) -> FeatureVector {
        FeatureVector::compose(
            (0..N_STATIC).map(|i| seed + i as f64).collect(),
            (N_STATIC..N_FEATURES).map(|i| seed + i as f64).collect(),
        )
    }

    #[test]
    fn compose_and_index() {
        let v = fv(0.0);
        assert_eq!(v.values().len(), N_FEATURES);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.get(N_FEATURES - 1), (N_FEATURES - 1) as f64);
    }

    #[test]
    #[should_panic]
    fn compose_rejects_bad_lengths() {
        let _ = FeatureVector::compose(vec![0.0; 3], vec![0.0; 3]);
    }

    #[test]
    fn mask_roundtrip() {
        let m = FeatureMask::from_ids(&[1, 5, 75]);
        assert_eq!(m.len(), 3);
        assert!(m.contains(5));
        assert!(!m.contains(6));
        assert_eq!(m.ids(), vec![1, 5, 75]);
        assert!(!m.is_empty());
        assert!(FeatureMask::none().is_empty());
        assert_eq!(FeatureMask::all().len(), N_FEATURES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_rejects_out_of_range() {
        let _ = FeatureMask::from_ids(&[76]);
    }

    #[test]
    fn projection_selects_in_order() {
        let v = fv(100.0);
        let m = FeatureMask::from_ids(&[2, 0, 10]);
        assert_eq!(v.project(&m), vec![100.0, 102.0, 110.0]);
    }

    #[test]
    fn matrix_projection() {
        let mut m = FeatureMatrix::new();
        m.push("a", fv(0.0));
        m.push("b", fv(1.0));
        assert_eq!(m.len(), 2);
        assert_eq!(m.names(), &["a".to_string(), "b".to_string()]);
        let p = m.project(&FeatureMask::from_ids(&[3]));
        assert_eq!(p.to_rows(), vec![vec![3.0], vec![4.0]]);
        assert_eq!(m.row(1).get(0), 1.0);
    }

    #[test]
    fn full_matrix_matches_all_mask_projection() {
        let mut m = FeatureMatrix::new();
        m.push("a", fv(0.0));
        m.push("b", fv(1.0));
        let full = m.matrix();
        assert_eq!(full.nrows(), 2);
        assert_eq!(full.ncols(), N_FEATURES);
        assert_eq!(full, m.project(&FeatureMask::all()));
    }
}

//! The Likwid substitute: dynamic features derived from hardware counters.

use fgbs_machine::{Arch, HwCounters};

use crate::catalog::N_DYNAMIC;

/// Compute the dynamic feature slots (ids `N_STATIC..N_FEATURES`) from
/// counters aggregated over all profiled invocations of one codelet on the
/// reference architecture.
///
/// `measured_cycles` is the *observed* cycle total (including probe
/// overhead and noise, as a real Likwid measurement would be); the event
/// counts come from `counters`.
pub fn dynamic_features(counters: &HwCounters, arch: &Arch, measured_cycles: f64) -> Vec<f64> {
    let iters = counters.iterations.max(1.0);
    let invocations = (counters.invocations as f64).max(1.0);
    let cycles = measured_cycles.max(1.0);
    let secs = arch.seconds(cycles).max(1e-15);
    let flops = counters.flops();
    let insts = counters.instructions.max(1.0);
    let total_misses: u64 = counters.cache_misses.iter().sum();

    let mb = 1.0e6;
    let l2_bytes = counters.bytes_from_l2;
    let l3_bytes = counters.bytes_from_l3;
    let mem_bytes = counters.bytes_from_mem;

    let mut f = vec![0.0; N_DYNAMIC];
    f[0] = secs / invocations; // time per invocation
    f[1] = cycles / iters; // cycles per iteration
    f[2] = insts / cycles; // IPC
    f[3] = flops / secs / mb; // MFLOPS
    f[4] = insts / secs / mb; // MIPS
    f[5] = counters.fp_div / secs / mb; // FP divide rate (M/s)
    f[6] = counters.vector_flop_ratio();
    f[7] = counters.miss_rate(0); // L1 miss rate
    f[8] = 1000.0 * *counters.cache_misses.first().unwrap_or(&0) as f64 / iters;
    f[9] = counters.miss_rate(1);
    f[10] = 1000.0 * *counters.cache_misses.get(1).unwrap_or(&0) as f64 / iters;
    f[11] = l2_bytes / secs / mb; // L2 bandwidth MB/s
    f[12] = l2_bytes / iters;
    f[13] = counters.miss_rate(2); // L3 miss rate (0 if no L3)
    f[14] = 1000.0 * *counters.cache_misses.get(2).unwrap_or(&0) as f64 / iters;
    f[15] = l3_bytes / secs / mb;
    f[16] = l3_bytes / iters;
    f[17] = mem_bytes / secs / mb; // memory bandwidth MB/s
    f[18] = mem_bytes / iters;
    f[19] = counters.loads / iters;
    f[20] = counters.stores / iters;
    f[21] = counters.loads / counters.stores.max(1.0);
    f[22] = if mem_bytes > 0.0 { flops / mem_bytes } else { flops }; // operational intensity
    f[23] = counters.branches / insts;
    f[24] = flops / iters;
    f[25] = insts / invocations;
    f[26] = cycles / invocations;
    f[27] = (counters.loads + counters.stores) / secs / mb;
    f[28] = total_misses as f64 / iters;
    f[29] = dp_fraction(counters);
    f[30] = sp_fraction(counters);
    f[31] = secs / iters * 1e9; // ns per iteration
    f[32] = flops / insts;
    f
}

fn dp_fraction(c: &HwCounters) -> f64 {
    let t = c.flops();
    if t == 0.0 {
        0.0
    } else {
        (c.flops_dp_scalar + c.flops_dp_vector) / t
    }
}

fn sp_fraction(c: &HwCounters) -> f64 {
    let t = c.flops();
    if t == 0.0 {
        0.0
    } else {
        (c.flops_sp_scalar + c.flops_sp_vector) / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{feature_id, N_STATIC};
    use fgbs_isa::{compile, BindingBuilder, CodeletBuilder, CompileMode, Precision};
    use fgbs_machine::Machine;

    /// Dynamic feature by name, offset into the dynamic-only slice.
    fn dyn_slot(name: &str) -> usize {
        feature_id(name) - N_STATIC
    }

    fn profile(n: u64) -> (Vec<f64>, HwCounters) {
        let arch = Arch::nehalem();
        let c = CodeletBuilder::new("tri", "t")
            .array("x", Precision::F64)
            .array("y", Precision::F64)
            .param_loop("n")
            .store("y", &[1], |b| b.load("x", &[1]) * 2.0 + b.load("y", &[1]))
            .build();
        let k = compile(&c, &arch.target(), CompileMode::InApp);
        let b = BindingBuilder::new(0)
            .vector(n, 8)
            .vector(n, 8)
            .param(n)
            .build_for(&c);
        let mut m = Machine::new(arch.clone());
        let meas = m.run(&k, &b);
        let f = dynamic_features(&meas.counters, &arch, meas.cycles);
        (f, meas.counters)
    }

    #[test]
    fn produces_all_dynamic_slots_finite() {
        let (f, _) = profile(1 << 14);
        assert_eq!(f.len(), N_DYNAMIC);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mflops_is_plausible() {
        let (f, c) = profile(1 << 14);
        let mflops = f[dyn_slot("Floating point rate in MFLOPS.s-1")];
        assert!(mflops > 10.0, "got {mflops}");
        assert!(mflops < 20_000.0, "got {mflops}");
        assert!(c.flops() > 0.0);
    }

    #[test]
    fn bandwidth_features_track_bytes() {
        let (f, c) = profile(1 << 16); // 1 MB arrays: stream from memory
        assert!(c.bytes_from_mem > 0.0);
        assert!(f[dyn_slot("Memory bandwidth in MB.s-1")] > 0.0);
        assert!(f[dyn_slot("Memory bytes per iteration")] > 0.0);
        assert!(f[dyn_slot("L2 bandwidth in MB.s-1")] > 0.0);
    }

    #[test]
    fn dp_fraction_is_one_for_dp_kernel() {
        let (f, _) = profile(1 << 12);
        assert!((f[dyn_slot("DP fraction of FLOPs")] - 1.0).abs() < 1e-12);
        assert_eq!(f[dyn_slot("SP fraction of FLOPs")], 0.0);
    }

    #[test]
    fn measured_overhead_lowers_ipc() {
        let arch = Arch::nehalem();
        let c = HwCounters::new(3);
        let mut c = c;
        c.instructions = 1000.0;
        c.iterations = 100.0;
        c.invocations = 1;
        let exact = dynamic_features(&c, &arch, 1000.0);
        let padded = dynamic_features(&c, &arch, 2000.0);
        assert!(padded[dyn_slot("IPC")] < exact[dyn_slot("IPC")]);
    }

    #[test]
    fn zero_counters_do_not_blow_up() {
        let arch = Arch::atom();
        let c = HwCounters::new(2);
        let f = dynamic_features(&c, &arch, 0.0);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}

//! Micro-architecture-independent workload characterisation.
//!
//! The paper's feature set is partly architecture-dependent (port
//! pressures, IPC bounds on the reference machine); §5 proposes
//! generalising the method with architecture-independent metrics in the
//! style of Hoste & Eeckhout (MICA). This module implements that
//! extension: a compact vector computed purely from the codelet IR, its
//! scalar-lowered instruction stream and the invocation context — nothing
//! about any machine's ports, caches or frequencies enters.
//!
//! `exp_ablations` compares clustering on these metrics against the
//! GA-trained and Table 2 feature sets.

use fgbs_isa::{compile, AccessIndex, Binding, Codelet, CompileMode, Precision, TargetSpec, VOp};

/// Number of architecture-independent metrics.
pub const N_ARCHIND: usize = 16;

/// Names of the metrics, index-aligned with [`archind_features`].
pub const ARCHIND_NAMES: [&str; N_ARCHIND] = [
    "FP fraction of instructions",
    "Integer fraction of instructions",
    "Load fraction of instructions",
    "Store fraction of instructions",
    "Branch fraction of instructions",
    "Divide/sqrt density",
    "Transcendental density",
    "Arithmetic ops per load",
    "Unit-stride access fraction",
    "Non-unit affine access fraction",
    "Random access fraction",
    "Working set bytes (log2)",
    "FLOPs per byte",
    "DP fraction of FP ops",
    "Loop nest depth",
    "Loop-carried recurrence",
];

/// Compute the architecture-independent signature of one codelet under
/// one invocation context.
///
/// The instruction stream is the *scalar* lowering, so vector width —
/// a property of the machine, not the program — cannot leak in.
pub fn archind_features(codelet: &Codelet, binding: &Binding) -> Vec<f64> {
    let kernel = compile(codelet, &TargetSpec::scalar(), CompileMode::InApp);

    let count = |pred: &dyn Fn(VOp) -> bool| -> f64 {
        kernel
            .insts
            .iter()
            .filter(|i| pred(i.op))
            .map(|i| i.weight)
            .sum()
    };
    let total = kernel.insts_per_iter().max(1e-12);
    let fp = count(&|op| op.is_flop());
    let int = count(&|op| matches!(op, VOp::IAdd | VOp::IMul));
    let loads = count(&|op| op == VOp::Load);
    let stores = count(&|op| op == VOp::Store);
    let branches = count(&|op| op == VOp::Branch);
    let divs = count(&|op| matches!(op, VOp::FDiv | VOp::FSqrt));
    let calls = count(&|op| op == VOp::FCall);
    let arith = fp + int;

    // Access-pattern census over the body's memory accesses.
    let ndims = codelet.nest.depth();
    let mut unit = 0usize;
    let mut nonunit = 0usize;
    let mut random = 0usize;
    for (a, _) in codelet.nest.accesses() {
        match &a.index {
            AccessIndex::Random { .. } => random += 1,
            AccessIndex::Affine { .. } => {
                let s = a.innermost_stride(ndims).expect("affine");
                if s.lda == 0 && s.consts.abs() <= 1 {
                    unit += 1;
                } else {
                    nonunit += 1;
                }
            }
        }
    }
    let n_acc = (unit + nonunit + random).max(1) as f64;

    let footprint = binding.footprint_bytes(codelet).max(1) as f64;
    let bytes_per_iter =
        (kernel.bytes_loaded_per_iter() + kernel.bytes_stored_per_iter()).max(1e-12);
    let flops = kernel.flops_per_iter();

    let dp: f64 = kernel
        .insts
        .iter()
        .filter(|i| i.op.is_flop() && i.prec == Precision::F64)
        .map(|i| i.weight)
        .sum();

    vec![
        fp / total,
        int / total,
        loads / total,
        stores / total,
        branches / total,
        divs / total,
        calls / total,
        arith / loads.max(1e-12),
        unit as f64 / n_acc,
        nonunit as f64 / n_acc,
        random as f64 / n_acc,
        footprint.log2(),
        flops / bytes_per_iter,
        if fp > 0.0 { dp / fp } else { 0.0 },
        ndims as f64,
        if kernel.has_recurrence() { 1.0 } else { 0.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgbs_isa::{BinOp, BindingBuilder, CodeletBuilder};

    fn dot() -> (Codelet, Binding) {
        let c = CodeletBuilder::new("dot", "t")
            .array("x", Precision::F64)
            .array("y", Precision::F64)
            .param_loop("n")
            .update_acc("s", BinOp::Add, |b| b.load("x", &[1]) * b.load("y", &[1]))
            .build();
        let b = BindingBuilder::new(0)
            .vector(1024, 8)
            .vector(1024, 8)
            .param(1024)
            .build_for(&c);
        (c, b)
    }

    #[test]
    fn vector_has_declared_length_and_names() {
        let (c, b) = dot();
        let f = archind_features(&c, &b);
        assert_eq!(f.len(), N_ARCHIND);
        assert_eq!(ARCHIND_NAMES.len(), N_ARCHIND);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fractions_are_fractions() {
        let (c, b) = dot();
        let f = archind_features(&c, &b);
        for i in [0, 1, 2, 3, 4, 8, 9, 10, 13] {
            assert!(
                (0.0..=1.0).contains(&f[i]),
                "{} = {}",
                ARCHIND_NAMES[i],
                f[i]
            );
        }
    }

    #[test]
    fn independent_of_vector_width() {
        // The metrics must not change between a machine with SSE and a
        // scalar machine — that is the whole point.
        let (c, b) = dot();
        let f1 = archind_features(&c, &b);
        // Recompute (archind always lowers scalar internally; this guards
        // the invariant stays true if someone touches the implementation).
        let f2 = archind_features(&c, &b);
        assert_eq!(f1, f2);
        assert!(f1[0] > 0.0, "dot product has FP work");
        assert_eq!(f1[10], 0.0, "no random accesses");
        assert_eq!(f1[15], 0.0, "reductions are not recurrences");
    }

    #[test]
    fn distinguishes_random_and_recurrent_codelets() {
        let hist = CodeletBuilder::new("hist", "t")
            .array("b", Precision::I32)
            .param_loop("n")
            .store_random("b", 1024, |e| e.load_random("b", 1024) + 1.0)
            .build();
        let bb = BindingBuilder::new(0).vector(1024, 4).param(512).build_for(&hist);
        let f = archind_features(&hist, &bb);
        assert!(f[10] > 0.9, "all accesses random: {}", f[10]);
        assert!(f[15] > 0.0, "random store aliases => recurrence");

        let (c, b) = dot();
        let g = archind_features(&c, &b);
        assert!(f[10] > g[10]);
        assert!(g[8] > 0.9, "dot is unit-stride");
    }

    #[test]
    fn working_set_grows_with_binding() {
        let (c, _) = dot();
        let small = BindingBuilder::new(0)
            .vector(256, 8)
            .vector(256, 8)
            .param(256)
            .build_for(&c);
        let big = BindingBuilder::new(0)
            .vector(65536, 8)
            .vector(65536, 8)
            .param(65536)
            .build_for(&c);
        let fs = archind_features(&c, &small);
        let fb = archind_features(&c, &big);
        assert!(fb[11] > fs[11], "log2 footprint must grow");
    }
}

//! The MAQAO substitute: static analysis of a compiled kernel.

use fgbs_isa::{CompiledKernel, Precision, VOp};
use fgbs_machine::{comp_bounds, Arch};

use crate::catalog::N_STATIC;

/// Compute the static feature slots (ids `0..N_STATIC`) for `kernel` as
/// analysed against `arch` (the reference architecture's port model, per
/// the paper's Step B).
///
/// ```
/// use fgbs_analysis::{feature_id, static_features, N_STATIC};
/// use fgbs_isa::{compile, CodeletBuilder, CompileMode, Precision};
/// use fgbs_machine::Arch;
///
/// let scale = CodeletBuilder::new("scale", "demo")
///     .array("x", Precision::F64)
///     .param_loop("n")
///     .store("x", &[1], |b| b.load("x", &[1]) * 0.5)
///     .build();
/// let arch = Arch::nehalem();
/// let kernel = compile(&scale, &arch.target(), CompileMode::InApp);
/// let f = static_features(&kernel, &arch);
/// assert_eq!(f.len(), N_STATIC);
/// assert!(f[feature_id("Vectorization ratio for Multiplications (FP)")] > 0.99);
/// ```
pub fn static_features(kernel: &CompiledKernel, arch: &Arch) -> Vec<f64> {
    let b = comp_bounds(kernel, arch);
    let l1_cycles = b.cycles().max(1e-12);
    let insts = kernel.insts_per_iter();

    let n_add = kernel.count_op(VOp::FAdd);
    let n_sub = kernel.count_op(VOp::FSub);
    let n_mul = kernel.count_op(VOp::FMul);
    let n_div = kernel.count_op(VOp::FDiv);
    let n_sqrt = kernel.count_op(VOp::FSqrt);
    let n_call = kernel.count_op(VOp::FCall);
    let n_max = kernel.count_op(VOp::FMax);
    let n_logic = kernel.count_op(VOp::FLogic);
    let n_shuf = kernel.count_op(VOp::Shuffle);
    let n_iadd = kernel.count_op(VOp::IAdd);
    let n_imul = kernel.count_op(VOp::IMul);
    let n_load = kernel.count_op(VOp::Load);
    let n_store = kernel.count_op(VOp::Store);
    let n_branch = kernel.count_op(VOp::Branch);

    // Scalar-single instruction count (the SD counterpart for F32).
    let n_ss: f64 = kernel
        .insts
        .iter()
        .filter(|i| i.op.is_flop() && i.lanes == 1 && i.prec == Precision::F32)
        .map(|i| i.weight)
        .sum();

    // Ratio ADD+SUB / MUL, saturated so divide-by-zero kernels stay finite
    // and the feature remains comparable across codelets.
    let addsub_mul = ((n_add + n_sub + 1e-9) / (n_mul + 1e-9)).min(16.0);

    let bytes_l = kernel.bytes_loaded_per_iter();
    let bytes_s = kernel.bytes_stored_per_iter();
    let bytes = bytes_l + bytes_s;
    let flops = kernel.flops_per_iter();

    let mut f = vec![0.0; N_STATIC];
    f[0] = insts;
    f[1] = b.uops;
    f[2] = b.est_ipc(insts);
    f[3] = l1_cycles;
    f[4] = bytes_l / l1_cycles;
    f[5] = bytes_s / l1_cycles;
    f[6] = b.port_load[0];
    f[7] = b.port_load[1];
    f[8] = b.port_load[2];
    f[9] = b.port_load[3];
    f[10] = b.port_load[4];
    f[11] = b.port_load[5];
    f[12] = b.chain;
    f[13] = b.latency_sum;
    f[14] = n_add;
    f[15] = n_sub;
    f[16] = n_mul;
    f[17] = n_div;
    f[18] = n_sqrt;
    f[19] = n_call;
    f[20] = n_max;
    f[21] = n_logic;
    f[22] = n_shuf;
    f[23] = n_iadd;
    f[24] = n_imul;
    f[25] = n_load;
    f[26] = n_store;
    f[27] = n_branch;
    f[28] = kernel.count_sd();
    f[29] = n_ss;
    f[30] = addsub_mul;
    f[31] = if bytes > 0.0 { flops / bytes } else { 0.0 };
    f[32] = vector_ratio_all(kernel);
    f[33] = kernel.vector_ratio_fp();
    f[34] = kernel.vector_ratio_of(&[VOp::FAdd, VOp::FSub]);
    f[35] = kernel.vector_ratio_of(&[VOp::FMul]);
    f[36] = kernel.vector_ratio_of(&[VOp::FDiv, VOp::FSqrt]);
    // "Other": everything that is neither an FP add/mul/div family op nor a
    // memory/branch instruction — logic, shuffles, max/min, int ALU.
    f[37] = kernel.vector_ratio_of(&[VOp::FLogic, VOp::Shuffle, VOp::FMax, VOp::IAdd, VOp::IMul]);
    f[38] = kernel.vector_ratio_of(&[VOp::IAdd, VOp::IMul]);
    f[39] = kernel.vector_ratio_of(&[VOp::Load]);
    f[40] = kernel.vector_ratio_of(&[VOp::Store]);
    f[41] = kernel.ndims as f64;
    f[42] = if kernel.has_recurrence() { 1.0 } else { 0.0 };
    f
}

fn vector_ratio_all(kernel: &CompiledKernel) -> f64 {
    let (mut vec, mut tot) = (0.0, 0.0);
    for i in &kernel.insts {
        let elems = i.weight * i.lanes as f64;
        tot += elems;
        if i.lanes > 1 {
            vec += elems;
        }
    }
    if tot == 0.0 {
        0.0
    } else {
        vec / tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::feature_id;
    use fgbs_isa::{compile, BinOp, CodeletBuilder, CompileMode};

    fn features_of(build: impl FnOnce() -> fgbs_isa::Codelet) -> Vec<f64> {
        let arch = Arch::nehalem();
        let c = build();
        let k = compile(&c, &arch.target(), CompileMode::InApp);
        static_features(&k, &arch)
    }

    #[test]
    fn produces_all_static_slots() {
        let f = features_of(|| {
            CodeletBuilder::new("dot", "t")
                .array("x", Precision::F64)
                .array("y", Precision::F64)
                .param_loop("n")
                .update_acc("s", BinOp::Add, |b| b.load("x", &[1]) * b.load("y", &[1]))
                .build()
        });
        assert_eq!(f.len(), N_STATIC);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!(f[feature_id("Estimated IPC assuming only L1 hits")] > 0.0);
    }

    #[test]
    fn div_kernel_counts_divs() {
        let f = features_of(|| {
            CodeletBuilder::new("vdiv", "t")
                .array("x", Precision::F64)
                .array("y", Precision::F64)
                .param_loop("n")
                .store("y", &[1], |b| b.load("y", &[1]) / b.load("x", &[1]))
                .build()
        });
        assert!(f[feature_id("Number of floating point DIV")] > 0.0);
        assert!(f[feature_id("Vectorization ratio for Divisions (FP)")] > 0.99);
    }

    #[test]
    fn recurrence_sets_stall_features() {
        let f = features_of(|| {
            CodeletBuilder::new("rec", "t")
                .array("u", Precision::F64)
                .array("r", Precision::F64)
                .param_loop("n")
                .store("u", &[1], |b| {
                    let prev = b.load_off("u", &[1], -1);
                    b.load("r", &[1]) - prev * 0.5
                })
                .build()
        });
        assert!(f[feature_id("Data dependencies stalls")] > 0.0);
        assert_eq!(f[feature_id("Loop-carried recurrence")], 1.0);
        assert_eq!(f[feature_id("Vectorization ratio for FP")], 0.0);
    }

    #[test]
    fn sd_vs_ss_distinguish_precision() {
        let dp = features_of(|| {
            CodeletBuilder::new("rec64", "t")
                .array("u", Precision::F64)
                .param_loop("n")
                .store("u", &[1], |b| {
                    let p = b.load_off("u", &[1], -1);
                    p * 0.5 + 1.0
                })
                .build()
        });
        assert!(dp[feature_id("Number of SD instructions")] > 0.0);
        assert_eq!(dp[feature_id("Number of SS instructions")], 0.0);

        let sp = features_of(|| {
            CodeletBuilder::new("rec32", "t")
                .array("u", Precision::F32)
                .param_loop("n")
                .store("u", &[1], |b| {
                    let p = b.load_off("u", &[1], -1);
                    p * 0.5 + 1.0
                })
                .build()
        });
        assert!(sp[feature_id("Number of SS instructions")] > 0.0);
        assert_eq!(sp[feature_id("Number of SD instructions")], 0.0);
    }

    #[test]
    fn addsub_mul_ratio_is_saturated() {
        // Pure-add kernel: no multiplies, the ratio must stay finite.
        let f = features_of(|| {
            CodeletBuilder::new("sum", "t")
                .array("x", Precision::F64)
                .param_loop("n")
                .update_acc("s", BinOp::Add, |b| b.load("x", &[1]))
                .build()
        });
        let r = f[feature_id("Ratio between ADD+SUB/MUL")];
        assert!(r.is_finite());
        assert!(r > 1.0);
        assert!(r <= 16.0);
    }

    #[test]
    fn port_pressure_reflects_mix() {
        // Store-heavy kernel pressures P4.
        let f = features_of(|| {
            CodeletBuilder::new("set0", "t")
                .array("x", Precision::F64)
                .param_loop("n")
                .store("x", &[1], |b| b.constant(0.0))
                .build()
        });
        assert!(f[feature_id("Pressure in dispatch port P4")] > 0.0);
        assert_eq!(f[feature_id("Number of FP MUL")], 0.0);
    }
}

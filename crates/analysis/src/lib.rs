//! Static and dynamic performance-feature extraction.
//!
//! The paper characterises every codelet with **76 features**: static
//! metrics from the MAQAO binary loop analyzer and dynamic metrics from
//! Likwid hardware counters (§3.2). This crate reproduces that feature
//! space over the simulator substrate:
//!
//! * [`static_features`] plays MAQAO: it analyses a compiled kernel against
//!   the reference architecture's port model — instruction mix, per-port
//!   pressure, estimated IPC assuming L1 hits, vectorization ratios per
//!   operation class, scalar-double counts, dependency-chain stalls…
//! * [`dynamic_features`] plays Likwid: it derives rates from the
//!   simulated PMU ([`fgbs_machine::HwCounters`]) — MFLOPS, level
//!   bandwidths, miss rates, memory bandwidth…
//!
//! [`catalog`] names all 76 features; [`table2_features`] returns the
//! 14-feature subset the paper's genetic algorithm selected (Table 2),
//! which `fgbs-core` can re-derive with its own GA run.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod archind;
mod catalog;
mod dynfeat;
mod staticfeat;
mod vector;

pub use archind::{archind_features, ARCHIND_NAMES, N_ARCHIND};
pub use catalog::{
    catalog, feature_id, table2_features, FeatureDef, FeatureKind, N_DYNAMIC, N_FEATURES,
    N_STATIC,
};
pub use dynfeat::dynamic_features;
pub use staticfeat::static_features;
pub use vector::{FeatureMask, FeatureMatrix, FeatureVector};

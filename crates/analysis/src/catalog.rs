//! The 76-feature catalog.
//!
//! Index layout: features `0..N_STATIC` are static (MAQAO substitute),
//! `N_STATIC..N_FEATURES` are dynamic (Likwid substitute). The names below
//! follow the paper's vocabulary where it names a feature (Table 2).

/// Origin of a feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Computed by static binary analysis on the reference architecture.
    Static,
    /// Derived from hardware counters of a reference-architecture run.
    Dynamic,
}

/// Descriptor of one feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureDef {
    /// Index into feature vectors.
    pub id: usize,
    /// Stable, human-readable name.
    pub name: &'static str,
    /// Static or dynamic.
    pub kind: FeatureKind,
}

/// Number of static features.
pub const N_STATIC: usize = 43;
/// Number of dynamic features.
pub const N_DYNAMIC: usize = 33;
/// Total features — 76, as in the paper.
pub const N_FEATURES: usize = N_STATIC + N_DYNAMIC;

const STATIC_NAMES: [&str; N_STATIC] = [
    "Instructions per iteration",
    "Micro-ops per iteration",
    "Estimated IPC assuming only L1 hits",
    "Estimated cycles per iteration (L1)",
    "Bytes loaded per cycle assuming L1 hits",
    "Bytes stored per cycle assuming L1 hits",
    "Pressure in dispatch port P0",
    "Pressure in dispatch port P1",
    "Pressure in dispatch port P2",
    "Pressure in dispatch port P3",
    "Pressure in dispatch port P4",
    "Pressure in dispatch port P5",
    "Data dependencies stalls",
    "Total operation latency per iteration",
    "Number of FP ADD",
    "Number of FP SUB",
    "Number of FP MUL",
    "Number of floating point DIV",
    "Number of FP SQRT",
    "Number of FP transcendental calls",
    "Number of FP MAX/MIN",
    "Number of FP logic ops",
    "Number of vector shuffles",
    "Number of INT ALU ops",
    "Number of INT MUL",
    "Number of loads",
    "Number of stores",
    "Number of branches",
    "Number of SD instructions",
    "Number of SS instructions",
    "Ratio between ADD+SUB/MUL",
    "Static FLOPs per byte",
    "Vectorization ratio for All",
    "Vectorization ratio for FP",
    "Vectorization ratio for Additions (FP)",
    "Vectorization ratio for Multiplications (FP)",
    "Vectorization ratio for Divisions (FP)",
    "Vectorization ratio for Other (FP+INT)",
    "Vectorization ratio for Other (INT)",
    "Vectorization ratio for Loads",
    "Vectorization ratio for Stores",
    "Loop nest depth",
    "Loop-carried recurrence",
];

const DYNAMIC_NAMES: [&str; N_DYNAMIC] = [
    "Time per invocation",
    "Cycles per iteration",
    "IPC",
    "Floating point rate in MFLOPS.s-1",
    "Instruction rate in MIPS",
    "FP divide rate",
    "Measured vector FLOP ratio",
    "L1 miss rate",
    "L1 misses per kilo-iteration",
    "L2 miss rate",
    "L2 misses per kilo-iteration",
    "L2 bandwidth in MB.s-1",
    "L2 bytes per iteration",
    "L3 miss rate",
    "L3 misses per kilo-iteration",
    "L3 bandwidth in MB.s-1",
    "L3 bytes per iteration",
    "Memory bandwidth in MB.s-1",
    "Memory bytes per iteration",
    "Loads per iteration",
    "Stores per iteration",
    "Load/store ratio",
    "Operational intensity",
    "Branch fraction",
    "FLOPs per iteration",
    "Instructions per invocation",
    "Cycles per invocation",
    "Memory ops rate in Mops.s-1",
    "Cache line transfers per iteration",
    "DP fraction of FLOPs",
    "SP fraction of FLOPs",
    "Time per iteration in ns",
    "FP fraction of instructions",
];

/// The full feature catalog, indexed by feature id.
pub fn catalog() -> Vec<FeatureDef> {
    let mut v = Vec::with_capacity(N_FEATURES);
    for (i, name) in STATIC_NAMES.iter().enumerate() {
        v.push(FeatureDef {
            id: i,
            name,
            kind: FeatureKind::Static,
        });
    }
    for (i, name) in DYNAMIC_NAMES.iter().enumerate() {
        v.push(FeatureDef {
            id: N_STATIC + i,
            name,
            kind: FeatureKind::Dynamic,
        });
    }
    v
}

/// Look up a feature id by its exact name.
///
/// # Panics
///
/// Panics if the name is unknown — feature names are compile-time constants
/// so a miss is a programming error.
pub fn feature_id(name: &str) -> usize {
    if let Some(i) = STATIC_NAMES.iter().position(|&n| n == name) {
        return i;
    }
    if let Some(i) = DYNAMIC_NAMES.iter().position(|&n| n == name) {
        return N_STATIC + i;
    }
    panic!("unknown feature name `{name}`");
}

/// The 14-feature set of the paper's Table 2 ("Best feature set found with
/// a genetic algorithm evaluated with NR codelets on Atom and Sandy
/// Bridge"): 4 Likwid dynamic features + 10 MAQAO static features.
pub fn table2_features() -> Vec<usize> {
    [
        // Likwid dynamic features.
        "Floating point rate in MFLOPS.s-1",
        "L2 bandwidth in MB.s-1",
        "L3 miss rate",
        "Memory bandwidth in MB.s-1",
        // MAQAO static features.
        "Bytes stored per cycle assuming L1 hits",
        "Data dependencies stalls",
        "Estimated IPC assuming only L1 hits",
        "Number of floating point DIV",
        "Number of SD instructions",
        "Pressure in dispatch port P1",
        "Ratio between ADD+SUB/MUL",
        "Vectorization ratio for Multiplications (FP)",
        "Vectorization ratio for Other (FP+INT)",
        "Vectorization ratio for Other (INT)",
    ]
    .iter()
    .map(|n| feature_id(n))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_76_features() {
        assert_eq!(N_FEATURES, 76);
        assert_eq!(catalog().len(), 76);
    }

    #[test]
    fn ids_are_positional_and_kinds_split() {
        let c = catalog();
        for (i, f) in c.iter().enumerate() {
            assert_eq!(f.id, i);
            if i < N_STATIC {
                assert_eq!(f.kind, FeatureKind::Static);
            } else {
                assert_eq!(f.kind, FeatureKind::Dynamic);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let c = catalog();
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                assert_ne!(c[i].name, c[j].name, "duplicate feature name");
            }
        }
    }

    #[test]
    fn feature_id_roundtrip() {
        for f in catalog() {
            assert_eq!(feature_id(f.name), f.id);
        }
    }

    #[test]
    #[should_panic(expected = "unknown feature name")]
    fn unknown_name_panics() {
        feature_id("does not exist");
    }

    #[test]
    fn table2_set_has_14_features_4_dynamic() {
        let t = table2_features();
        assert_eq!(t.len(), 14);
        let dynamic = t.iter().filter(|&&i| i >= N_STATIC).count();
        assert_eq!(dynamic, 4);
        // All distinct.
        let mut s = t.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 14);
    }
}

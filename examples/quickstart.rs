//! Quickstart: reduce a benchmark suite and predict a new machine.
//!
//! Runs the five-step pipeline over ten Numerical Recipes benchmarks:
//! profiles them on the (simulated) Nehalem reference, clusters their
//! feature vectors, extracts one representative microbenchmark per
//! cluster, then predicts every benchmark's time on Atom from just those
//! representative runs — and checks the predictions against a real full
//! run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fgbs::core::{
    predict, profile_reference, reduce, KChoice, PipelineConfig,
};
use fgbs::machine::{Arch, PARK_SCALE};
use fgbs::suites::{nr_suite, Class};

fn main() {
    // Steps A + B: detect codelets and profile them on the reference.
    let cfg = PipelineConfig::default().with_k(KChoice::Elbow { max_k: 10 });
    let apps: Vec<_> = nr_suite(Class::A).into_iter().take(10).collect();
    println!("profiling {} benchmarks on {}…", apps.len(), cfg.reference.name);
    let suite = profile_reference(&apps, &cfg);
    println!(
        "  {} codelets detected, {:.0} % of execution time covered",
        suite.len(),
        100.0 * suite.coverage
    );

    // Steps C + D: cluster and pick representatives.
    let reduced = reduce(&suite, &cfg);
    println!(
        "clustered into {} groups (elbow); representatives:",
        reduced.n_representatives()
    );
    for c in &reduced.clusters {
        println!(
            "  <{}> stands for {} codelet(s)",
            suite.codelets[c.representative].name,
            c.members.len()
        );
    }

    // Step E: measure the representatives on Atom and extrapolate.
    let atom = Arch::atom().scaled(PARK_SCALE);
    let outcome = predict(&suite, &reduced, &atom, &cfg);
    println!("\nper-benchmark prediction on {}:", atom.name);
    println!(
        "{:>12}  {:>12}  {:>12}  {:>7}",
        "codelet", "real", "predicted", "error"
    );
    for p in &outcome.predictions {
        println!(
            "{:>12}  {:>9.1} us  {:>9.1} us  {:>6.1}%",
            suite.codelets[p.codelet]
                .name
                .split('/')
                .next()
                .unwrap_or(""),
            p.real_seconds * 1e6,
            p.predicted_seconds.unwrap_or(f64::NAN) * 1e6,
            p.error_pct.unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nmedian error {:.1} % from only {} microbenchmark runs instead of {} full benchmarks",
        outcome.median_error_pct(),
        reduced.n_representatives(),
        suite.len()
    );
}

//! System selection: pick the best machine for the NAS suite.
//!
//! This is the paper's headline use case. The full NAS-like suite is
//! profiled once on the reference; the reduced representative set is then
//! run on each candidate machine, application times are extrapolated, and
//! the machines are ranked by predicted geometric-mean speedup. The
//! ranking is validated against full ground-truth runs.
//!
//! ```sh
//! cargo run --release --example system_selection
//! ```

use fgbs::core::{
    aggregate_apps, geometric_mean_speedup, predict, profile_reference, reduce, PipelineConfig,
};
use fgbs::machine::Arch;
use fgbs::suites::{nas_suite, Class};

fn main() {
    let cfg = PipelineConfig::default();
    println!("profiling the NAS suite on {} (this is the one-off cost)…", cfg.reference.name);
    let suite = profile_reference(&nas_suite(Class::A), &cfg);
    let reduced = reduce(&suite, &cfg);
    println!(
        "  {} codelets -> {} representative microbenchmarks\n",
        suite.len(),
        reduced.n_representatives()
    );

    let mut ranking: Vec<(String, f64, f64)> = Vec::new();
    for target in Arch::targets_scaled() {
        println!("evaluating {}…", target.name);
        let outcome = predict(&suite, &reduced, &target, &cfg);
        let apps = aggregate_apps(&suite, &outcome, &target, &cfg);
        for a in &apps {
            println!(
                "  {:>3}: predicted {:>8.2} ms   (real {:>8.2} ms)",
                a.app,
                a.predicted_seconds.unwrap_or(f64::NAN) * 1e3,
                a.real_seconds * 1e3,
            );
        }
        let (real, predicted) = geometric_mean_speedup(&apps);
        println!(
            "  geometric-mean speedup vs reference: predicted {predicted:.2} (real {real:.2})\n"
        );
        ranking.push((target.name.clone(), predicted, real));
    }

    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite speedups"));
    println!("predicted ranking:");
    for (i, (name, pred, real)) in ranking.iter().enumerate() {
        println!("  {}. {name} (predicted {pred:.2}, real {real:.2})", i + 1);
    }
    let mut by_real = ranking.clone();
    by_real.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite speedups"));
    println!(
        "\nselection {}: the reduced suite picks {}, ground truth says {}",
        if ranking[0].0 == by_real[0].0 { "CORRECT" } else { "WRONG" },
        ranking[0].0,
        by_real[0].0
    );
}

//! Compiler selection — the paper's §6 extension.
//!
//! "The extracted microbenchmarks are portable source-code snippets. Our
//! method could be extended to other contexts such as compiler regression
//! test-suites or auto-tuning."
//!
//! Here the two "systems" being selected between are not two machines but
//! two *compiler configurations* of the same machine: the vectorizing
//! compiler vs `-no-vec`. The reduced representative set — not the full
//! suite — is rebuilt under each configuration, and the model predicts
//! which configuration wins for every application.
//!
//! ```sh
//! cargo run --release --example compiler_selection
//! ```

use fgbs::core::{
    aggregate_apps, predict_with_runs, profile_reference, profile_target, reduce_cached,
    MicroCache, PipelineConfig,
};
use fgbs::isa::TargetSpec;
use fgbs::suites::{nas_suite, Class};

fn main() {
    let cfg = PipelineConfig::default();
    println!(
        "profiling the NAS suite on {} (vectorizing compiler)…",
        cfg.reference.name
    );
    let suite = profile_reference(&nas_suite(Class::A), &cfg);
    let cache = MicroCache::new();
    let reduced = reduce_cached(&suite, &cfg, &cache);
    println!(
        "  {} codelets -> {} representatives\n",
        suite.len(),
        reduced.n_representatives()
    );

    // The "-no-vec build" is the same machine with vectorization disabled.
    let mut novec = cfg.reference.clone();
    novec.name = "Nehalem -no-vec".to_string();
    novec.vector = TargetSpec::scalar();

    println!("rebuilding only the representatives under -no-vec…");
    let runs = profile_target(&suite, &novec, &cfg); // ground truth for validation
    let out = predict_with_runs(&suite, &reduced, &novec, &runs, &cache, &cfg);
    let apps = aggregate_apps(&suite, &out, &novec, &cfg);

    println!("\nper-application cost of disabling vectorization:");
    println!(
        "{:>4}  {:>16}  {:>16}  {:>10}",
        "app", "predicted slowdown", "real slowdown", "verdict"
    );
    let mut correct = 0;
    for a in &apps {
        let real = a.real_seconds / a.ref_seconds;
        let pred = a.predicted_seconds.unwrap_or(f64::NAN) / a.ref_seconds;
        let pick = |s: f64| if s > 1.02 { "keep -vec" } else { "either" };
        let ok = pick(pred) == pick(real);
        if ok {
            correct += 1;
        }
        println!(
            "{:>4}  {:>17.2}x  {:>15.2}x  {:>10}{}",
            a.app,
            pred,
            real,
            pick(pred),
            if ok { "" } else { "  (mismatch)" }
        );
    }
    println!(
        "\ncompiler choice correct for {}/{} applications, from {} microbenchmark rebuilds\ninstead of {} full application rebuilds.",
        correct,
        apps.len(),
        reduced.n_representatives(),
        suite.len()
    );
}

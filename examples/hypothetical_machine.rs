//! What-if analysis: evaluate a machine that does not exist.
//!
//! Because the reduced suite is a handful of portable microbenchmarks and
//! the machines are parametric models, system selection extends naturally
//! to *hypothetical* candidates. Here we ask two questions the paper's
//! Table 1 park invites:
//!
//! 1. What would Atom gain from a last-level cache?
//! 2. What would Sandy Bridge lose at Atom's clock?
//!
//! The pipeline treats each variant as just another target: measure the
//! representatives, extrapolate the suite, compare geometric means.
//!
//! ```sh
//! cargo run --release --example hypothetical_machine
//! ```

use fgbs::core::{
    evaluate_targets, profile_reference, rank_targets, reduce, MicroCache, PipelineConfig,
};
use fgbs::machine::{Arch, CacheLevel, PARK_SCALE};
use fgbs::suites::{nas_suite, Class};

fn main() {
    let cfg = PipelineConfig::default();
    println!("profiling the NAS suite on {}…", cfg.reference.name);
    let suite = profile_reference(&nas_suite(Class::A), &cfg);
    let reduced = reduce(&suite, &cfg);
    println!(
        "  {} codelets -> {} representatives\n",
        suite.len(),
        reduced.n_representatives()
    );

    // Variant 1: Atom with a 4 MB L3 bolted on (scaled: 512 KB).
    let mut atom_l3 = Arch::atom().scaled(PARK_SCALE);
    atom_l3.name = "Atom + L3".into();
    atom_l3.caches.push(CacheLevel {
        size: 4 * 1024 * 1024 / PARK_SCALE,
        assoc: 16,
        latency: 30.0,
        bandwidth: 8.0,
    });

    // Variant 2: Sandy Bridge down-clocked to Atom's 1.66 GHz.
    let mut slow_sb = Arch::sandy_bridge().scaled(PARK_SCALE);
    slow_sb.name = "SB @ 1.66 GHz".into();
    slow_sb.freq_ghz = 1.66;

    let targets = vec![
        Arch::atom().scaled(PARK_SCALE),
        atom_l3,
        slow_sb,
        Arch::sandy_bridge().scaled(PARK_SCALE),
    ];
    let cache = MicroCache::new();
    let evals = evaluate_targets(&suite, &reduced, &targets, &cache, &cfg);

    println!("{:<14} {:>10} {:>10}", "candidate", "predicted", "real");
    for e in &evals {
        println!(
            "{:<14} {:>10.2} {:>10.2}",
            e.target, e.geomean.1, e.geomean.0
        );
    }

    let rank = rank_targets(&evals);
    println!("\npredicted ranking: {}",
        rank.iter().map(|(n, _, _)| n.as_str()).collect::<Vec<_>>().join(" > "));

    let atom = evals.iter().find(|e| e.target == "Atom").unwrap();
    let atoml3 = evals.iter().find(|e| e.target == "Atom + L3").unwrap();
    println!(
        "\nadding an L3 to Atom is predicted to improve the suite geomean by {:.0} % \
(real effect: {:.0} %)",
        100.0 * (atoml3.geomean.1 / atom.geomean.1 - 1.0),
        100.0 * (atoml3.geomean.0 / atom.geomean.0 - 1.0),
    );
}

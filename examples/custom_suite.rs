//! Bring your own benchmarks: write codelets with the builder DSL, wrap
//! them into an application, and push them through the whole pipeline.
//!
//! The example builds a small "image pipeline" application — a blur
//! stencil, a gamma lookup with a transcendental, a histogram, and a dot
//! product — and shows detection, feature extraction, clustering, and
//! prediction on two target machines.
//!
//! ```sh
//! cargo run --release --example custom_suite
//! ```

use fgbs::core::{predict, profile_reference, reduce, KChoice, PipelineConfig};
use fgbs::extract::ApplicationBuilder;
use fgbs::isa::{AffineExpr, BinOp, BindingBuilder, CodeletBuilder, Precision};
use fgbs::machine::{Arch, PARK_SCALE};

fn main() {
    let n: u64 = 16 * 1024;
    let side: u64 = 128;

    // A 5-point blur over an image plane.
    let blur = CodeletBuilder::new("blur", "imgpipe")
        .pattern("DP: 5-point blur stencil")
        .array("dst", Precision::F64)
        .array("src", Precision::F64)
        .param_loop("i")
        .param_loop("j")
        .store_at(
            "dst",
            vec![AffineExpr::lda(1), AffineExpr::lit(1)],
            AffineExpr::new(1, 1),
            |b| {
                let s = vec![AffineExpr::lda(1), AffineExpr::lit(1)];
                let c = b.load_expr("src", s.clone(), AffineExpr::new(1, 1));
                let e = b.load_expr("src", s.clone(), AffineExpr::new(2, 1));
                let w = b.load_expr("src", s.clone(), AffineExpr::new(0, 1));
                let up = b.load_expr("src", s.clone(), AffineExpr::new(1, 2));
                let dn = b.load_expr("src", s, AffineExpr::new(1, 0));
                c * 0.4 + (e + w + up + dn) * 0.15
            },
        )
        .build();

    // Gamma correction: a transcendental per pixel (compute bound).
    let gamma = CodeletBuilder::new("gamma", "imgpipe")
        .pattern("DP: exponential per element")
        .array("px", Precision::F64)
        .param_loop("n")
        .store("px", &[1], |b| b.load("px", &[1]).exp() * 0.01)
        .build();

    // Luminance histogram: random scatter.
    let hist = CodeletBuilder::new("histogram", "imgpipe")
        .pattern("INT: histogram scatter")
        .array("bins", Precision::I32)
        .array("px", Precision::I32)
        .param_loop("n")
        .store_random("bins", u64::MAX, |b| b.load_random("bins", u64::MAX) + 1.0)
        .build();

    // A similarity metric: dot product.
    let dot = CodeletBuilder::new("dot", "imgpipe")
        .pattern("DP: dot product")
        .array("a", Precision::F64)
        .array("b", Precision::F64)
        .param_loop("n")
        .update_acc("s", BinOp::Add, |bd| bd.load("a", &[1]) * bd.load("b", &[1]))
        .build();

    // Bind every codelet to concrete buffers and schedule the pipeline.
    let mut app = ApplicationBuilder::new("imgpipe");
    let mut base = 1 << 12;
    let mut bind = |c: &fgbs::isa::Codelet, lens: &[(u64, i64)], params: &[u64]| {
        let mut bb = BindingBuilder::new(base);
        for (i, &(len, lda)) in lens.iter().enumerate() {
            bb = bb.matrix(len, c.arrays[i].elem.bytes(), lda);
        }
        for &p in params {
            bb = bb.param(p);
        }
        base = bb.cursor();
        bb.build_for(c)
    };
    let b_blur = bind(&blur, &[(side * side, side as i64); 2], &[side - 2, side - 2]);
    let b_gamma = bind(&gamma, &[(n, n as i64)], &[n]);
    let b_hist = bind(&hist, &[(4096, 4096), (n, n as i64)], &[n]);
    let b_dot = bind(&dot, &[(n, n as i64); 2], &[n]);

    let i_blur = app.codelet(blur, vec![b_blur]);
    let i_gamma = app.codelet(gamma, vec![b_gamma]);
    let i_hist = app.codelet(hist, vec![b_hist]);
    let i_dot = app.codelet(dot, vec![b_dot]);
    app.invoke(i_blur, 0, 8)
        .invoke(i_gamma, 0, 4)
        .invoke(i_hist, 0, 4)
        .invoke(i_dot, 0, 8)
        .rounds(6);
    let app = app.build();

    // Run the pipeline: one representative per behaviour class.
    let cfg = PipelineConfig::default().with_k(KChoice::Elbow { max_k: 4 });
    let suite = profile_reference(&[app], &cfg);
    println!(
        "detected {} codelets, coverage {:.0} %",
        suite.len(),
        100.0 * suite.coverage
    );
    let reduced = reduce(&suite, &cfg);
    for (ci, c) in reduced.clusters.iter().enumerate() {
        let names: Vec<_> = c
            .members
            .iter()
            .map(|&m| suite.codelets[m].name.rsplit('/').next().unwrap_or(""))
            .collect();
        println!(
            "cluster {}: {:?} -> representative {}",
            ci + 1,
            names,
            suite.codelets[c.representative].name
        );
    }

    for target in [
        Arch::atom().scaled(PARK_SCALE),
        Arch::sandy_bridge().scaled(PARK_SCALE),
    ] {
        let out = predict(&suite, &reduced, &target, &cfg);
        println!(
            "{:>13}: median prediction error {:.1} %",
            target.name,
            out.median_error_pct()
        );
    }
}

//! Feature selection with the genetic algorithm (§4.2 / Table 2).
//!
//! Trains a feature mask on the Numerical Recipes suite against Atom and
//! Sandy Bridge using the paper's fitness `max(err_Atom, err_SB) × K`,
//! then compares the resulting clustering quality against the paper's
//! published 14-feature set and against using all 76 features.
//!
//! ```sh
//! cargo run --release --example feature_selection
//! ```

use fgbs::analysis::{catalog, table2_features, FeatureMask};
use fgbs::core::{
    predict_with_runs, profile_reference, profile_target, reduce_cached, select_features_ga,
    MicroCache, PipelineConfig,
};
use fgbs::genetic::GaConfig;
use fgbs::machine::{Arch, PARK_SCALE};
use fgbs::suites::{nr_suite, Class};

fn main() {
    let cfg = PipelineConfig::default();
    println!("profiling the 28 NR codelets…");
    let suite = profile_reference(&nr_suite(Class::A), &cfg);
    let targets = vec![
        Arch::atom().scaled(PARK_SCALE),
        Arch::sandy_bridge().scaled(PARK_SCALE),
    ];

    let ga = GaConfig {
        population: 60,
        generations: 20,
        seed: 7,
        ..GaConfig::default()
    };
    println!(
        "running the GA (population {}, {} generations, mutation {})…",
        ga.population, ga.generations, ga.mutation_prob
    );
    let sel = select_features_ga(&suite, &targets, &ga, &cfg);
    println!(
        "\nselected {} features (fitness {:.2}, elbow K = {}):",
        sel.feature_ids.len(),
        sel.fitness,
        sel.k
    );
    let cat = catalog();
    for id in &sel.feature_ids {
        println!("  - {} [{:?}]", cat[*id].name, cat[*id].kind);
    }
    println!(
        "counters: {} evaluations, fitness cache {} hits / {} misses, \
         store {} hits / {} misses, {} warm-start entries",
        sel.evaluations,
        sel.cache_hits,
        sel.cache_misses,
        sel.store_hits,
        sel.store_misses,
        sel.warm_entries
    );

    // Compare three masks on held-out Core 2.
    let core2 = Arch::core2().scaled(PARK_SCALE);
    let cache = MicroCache::new();
    let runs = profile_target(&suite, &core2, &cfg);
    println!("\nvalidation on the held-out Core 2 target:");
    for (label, mask) in [
        ("GA-selected", sel.mask.clone()),
        ("paper Table 2", FeatureMask::from_ids(&table2_features())),
        ("all 76", FeatureMask::all()),
    ] {
        let mcfg = cfg.clone().with_features(mask);
        let reduced = reduce_cached(&suite, &mcfg, &cache);
        let out = predict_with_runs(&suite, &reduced, &core2, &runs, &cache, &mcfg);
        println!(
            "  {:>13}: K = {:>2}, median error {:>5.1} %",
            label,
            reduced.n_representatives(),
            out.median_error_pct()
        );
    }
}

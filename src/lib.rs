//! # fgbs — fine-grained benchmark subsetting for system selection
//!
//! A complete Rust reproduction of *Fine-grained Benchmark Subsetting for
//! System Selection* (de Oliveira Castro, Kashnikov, Akel, Popov, Jalby —
//! CGO 2014).
//!
//! The paper reduces the cost of choosing the best machine for a set of
//! applications: applications are broken into *codelets*, similar codelets
//! are clustered on 76 static + dynamic performance features, and only one
//! representative per cluster — extracted as a standalone microbenchmark —
//! is run on each candidate machine. A simple speedup model then predicts
//! every codelet, every application, and the per-machine geometric-mean
//! speedup, at a fraction of the benchmarking cost.
//!
//! This crate re-exports the whole stack:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`isa`] | `fgbs-isa` | codelet IR, virtual ISA, compiler lowering |
//! | [`machine`] | `fgbs-machine` | the simulated machine park (Table 1) |
//! | [`analysis`] | `fgbs-analysis` | the 76-feature MAQAO/Likwid substitute |
//! | [`matrix`] | `fgbs-matrix` | flat numeric kernel layer: matrices, condensed triangles, distance kernels |
//! | [`extract`] | `fgbs-extract` | applications, codelet finder, memory dumps, microbenchmarks |
//! | [`clustering`] | `fgbs-clustering` | Ward hierarchical clustering + elbow |
//! | [`genetic`] | `fgbs-genetic` | GA feature selection |
//! | [`pool`] | `fgbs-pool` | shared work-stealing pool + memoization cache |
//! | [`reactor`] | `fgbs-reactor` | minimal epoll readiness reactor (wake fd, interest sets) |
//! | [`suites`] | `fgbs-suites` | Numerical Recipes + NAS-like benchmark suites |
//! | [`core`] | `fgbs-core` | the five-step pipeline and prediction model |
//! | [`snippet`] | `fgbs-snippet` | portable, versioned, replayable codelet-snippet packs |
//! | [`store`] | `fgbs-store` | content-addressed, versioned on-disk artifact store |
//! | [`serve`] | `fgbs-serve` | concurrent HTTP system-selection service |
//! | [`trace`] | `fgbs-trace` | cross-crate spans, counters, Chrome-trace export |
//! | [`fault`] | `fgbs-fault` | deterministic failpoints, retry/backoff, deadlines |
//! | [`bench`] | `fgbs-bench` | experiment harness + benchmark barometer (`fgbs bench`) |
//!
//! # Quickstart
//!
//! ```
//! use fgbs::core::{profile_reference, reduce, predict, PipelineConfig, KChoice};
//! use fgbs::machine::{Arch, PARK_SCALE};
//! use fgbs::suites::{nr_suite, Class};
//!
//! // Steps A+B: profile a few NR benchmarks on the reference machine.
//! let cfg = PipelineConfig::fast().with_k(KChoice::Fixed(3));
//! let apps: Vec<_> = nr_suite(Class::Test).into_iter().take(6).collect();
//! let suite = profile_reference(&apps, &cfg);
//!
//! // Steps C+D: cluster and extract representatives.
//! let reduced = reduce(&suite, &cfg);
//! assert!(reduced.n_representatives() <= 3);
//!
//! // Step E: predict every codelet on Atom from 3 microbenchmark runs.
//! let atom = Arch::atom().scaled(PARK_SCALE);
//! let outcome = predict(&suite, &reduced, &atom, &cfg);
//! assert!(outcome.median_error_pct().is_finite());
//! ```

#![warn(missing_docs)]

pub use fgbs_analysis as analysis;
pub use fgbs_bench as bench;
pub use fgbs_clustering as clustering;
pub use fgbs_core as core;
pub use fgbs_extract as extract;
pub use fgbs_fault as fault;
pub use fgbs_genetic as genetic;
pub use fgbs_isa as isa;
pub use fgbs_machine as machine;
pub use fgbs_matrix as matrix;
pub use fgbs_pool as pool;
pub use fgbs_reactor as reactor;
pub use fgbs_serve as serve;
pub use fgbs_snippet as snippet;
pub use fgbs_store as store;
pub use fgbs_suites as suites;
pub use fgbs_trace as trace;

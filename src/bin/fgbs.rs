//! `fgbs` — command-line driver for the benchmark-subsetting pipeline.
//!
//! ```text
//! fgbs info                               # machine park and suite inventory
//! fgbs show    --suite nr|nas [--codelet NAME]   # pseudo-code of the codelets
//! fgbs reduce  --suite nr|nas [options]   # steps A-D: clusters + representatives
//! fgbs predict --suite nr|nas --target atom|core2|sb [options]
//! fgbs select  --suite nr|nas [options]   # full system selection across all targets
//!
//! options:
//!   --class test|a|b     dataset class (default a)
//!   --k N | --k elbow    cluster count policy (default elbow)
//!   --threads N          worker threads (0 = auto, 1 = serial; default auto)
//!   --paper-features     cluster on the paper's Table 2 feature list
//! ```

use fgbs::analysis::{table2_features, FeatureMask};
use fgbs::clustering::render_dendrogram;
use fgbs::core::{
    evaluate_targets, predict, profile_reference, rank_targets, reduce, KChoice, MicroCache,
    PipelineConfig,
};
use fgbs::machine::{Arch, PARK_SCALE};
use fgbs::suites::{nas_suite, nr_suite, Class, NAS_APPS};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Cli {
    command: Command,
    suite: SuiteKind,
    class: Class,
    k: KChoice,
    threads: usize,
    paper_features: bool,
    target: Option<String>,
    codelet: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Info,
    Show,
    Reduce,
    Predict,
    Select,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SuiteKind {
    Nr,
    Nas,
}

const USAGE: &str = "usage: fgbs <info|show|reduce|predict|select> \
[--suite nr|nas] [--class test|a|b] [--k N|elbow] [--threads N] \
[--target atom|core2|sb] [--codelet NAME] [--paper-features]";

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: Command::Info,
        suite: SuiteKind::Nas,
        class: Class::A,
        k: KChoice::Elbow { max_k: 24 },
        threads: 0, // the CLI defaults to all available cores
        paper_features: false,
        target: None,
        codelet: None,
    };
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("info") => cli.command = Command::Info,
        Some("show") => cli.command = Command::Show,
        Some("reduce") => cli.command = Command::Reduce,
        Some("predict") => cli.command = Command::Predict,
        Some("select") => cli.command = Command::Select,
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => {
                cli.suite = match it.next().map(String::as_str) {
                    Some("nr") => SuiteKind::Nr,
                    Some("nas") => SuiteKind::Nas,
                    other => return Err(format!("--suite nr|nas, got {other:?}")),
                }
            }
            "--class" => {
                cli.class = match it.next().map(String::as_str) {
                    Some("test") => Class::Test,
                    Some("a") => Class::A,
                    Some("b") => Class::B,
                    other => return Err(format!("--class test|a|b, got {other:?}")),
                }
            }
            "--k" => {
                cli.k = match it.next().map(String::as_str) {
                    Some("elbow") => KChoice::Elbow { max_k: 24 },
                    Some(n) => KChoice::Fixed(
                        n.parse()
                            .map_err(|_| format!("--k expects a number or `elbow`, got `{n}`"))?,
                    ),
                    None => return Err("--k expects a value".into()),
                }
            }
            "--threads" => {
                cli.threads = match it.next().map(String::as_str) {
                    Some(n) => n
                        .parse()
                        .map_err(|_| format!("--threads expects a number, got `{n}`"))?,
                    None => return Err("--threads expects a value".into()),
                }
            }
            "--target" => {
                cli.target = Some(
                    it.next()
                        .ok_or_else(|| "--target expects a value".to_string())?
                        .clone(),
                )
            }
            "--codelet" => {
                cli.codelet = Some(
                    it.next()
                        .ok_or_else(|| "--codelet expects a name".to_string())?
                        .clone(),
                )
            }
            "--paper-features" => cli.paper_features = true,
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn target_by_name(name: &str) -> Result<Arch, String> {
    let arch = match name.to_ascii_lowercase().as_str() {
        "atom" => Arch::atom(),
        "core2" | "core-2" | "core 2" => Arch::core2(),
        "sb" | "sandybridge" | "sandy-bridge" => Arch::sandy_bridge(),
        "nehalem" | "ref" => Arch::nehalem(),
        other => return Err(format!("unknown target `{other}` (atom|core2|sb)")),
    };
    Ok(arch.scaled(PARK_SCALE))
}

fn build_config(cli: &Cli) -> PipelineConfig {
    let mut cfg = PipelineConfig::default().with_k(cli.k).with_threads(cli.threads);
    if cli.paper_features {
        cfg = cfg.with_features(FeatureMask::from_ids(&table2_features()));
    }
    cfg
}

fn suite_apps(cli: &Cli) -> Vec<fgbs::extract::Application> {
    match cli.suite {
        SuiteKind::Nr => nr_suite(cli.class),
        SuiteKind::Nas => nas_suite(cli.class),
    }
}

fn cmd_info() {
    println!("machine park (simulated at 1/{PARK_SCALE} cache capacity):");
    for a in Arch::park_scaled() {
        let caches: Vec<String> = a
            .caches
            .iter()
            .enumerate()
            .map(|(i, c)| format!("L{} {} KB", i + 1, c.size / 1024))
            .collect();
        println!(
            "  {:<13} {} @ {:.2} GHz, {}, {}",
            a.name,
            a.cpu,
            a.freq_ghz,
            if a.in_order { "in-order" } else { "out-of-order" },
            caches.join(" / ")
        );
    }
    println!("\nsuites:");
    println!("  nr  — 28 Numerical Recipes kernels (Table 3), one codelet each");
    println!(
        "  nas — {} NAS-like applications: {}",
        NAS_APPS.len(),
        NAS_APPS.join(", ")
    );
}

fn cmd_show(cli: &Cli) {
    let apps = suite_apps(cli);
    for app in &apps {
        for c in &app.codelets {
            if let Some(filter) = &cli.codelet {
                if !c.qualified_name().contains(filter.as_str()) {
                    continue;
                }
            }
            print!("{c}");
            println!(
                "  # pattern: {} | strides: {} | {}",
                c.pattern,
                c.stride_summary(),
                if c.extractable { "extractable" } else { "not extractable" }
            );
            println!();
        }
    }
}

fn cmd_reduce(cli: &Cli) {
    let cfg = build_config(cli);
    let apps = suite_apps(cli);
    eprintln!("profiling on {}…", cfg.reference.name);
    let suite = profile_reference(&apps, &cfg);
    let reduced = reduce(&suite, &cfg);
    println!(
        "{} codelets ({:.0} % coverage) -> {} clusters, {} ill-behaved",
        suite.len(),
        100.0 * suite.coverage,
        reduced.n_representatives(),
        reduced.ill_behaved.len()
    );
    for (i, c) in reduced.clusters.iter().enumerate() {
        println!(
            "cluster {:>2}: <{}> + {} sibling(s)",
            i + 1,
            suite.codelets[c.representative].name,
            c.members.len() - 1
        );
    }
    let labels: Vec<String> = suite.codelets.iter().map(|c| c.name.clone()).collect();
    println!("\ndendrogram:");
    print!("{}", render_dendrogram(&reduced.dendrogram, &labels, 36));
}

fn cmd_predict(cli: &Cli) -> Result<(), String> {
    let name = cli
        .target
        .as_deref()
        .ok_or("predict requires --target atom|core2|sb")?;
    let target = target_by_name(name)?;
    let cfg = build_config(cli);
    let apps = suite_apps(cli);
    eprintln!("profiling on {}…", cfg.reference.name);
    let suite = profile_reference(&apps, &cfg);
    let reduced = reduce(&suite, &cfg);
    eprintln!(
        "measuring {} representatives on {}…",
        reduced.n_representatives(),
        target.name
    );
    let out = predict(&suite, &reduced, &target, &cfg);
    println!("{:<28} {:>12} {:>12} {:>8}", "codelet", "real", "predicted", "err %");
    for p in &out.predictions {
        println!(
            "{:<28} {:>9.1} us {:>9.1} us {:>8.1}",
            suite.codelets[p.codelet].name,
            p.real_seconds * 1e6,
            p.predicted_seconds.unwrap_or(f64::NAN) * 1e6,
            p.error_pct.unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nmedian error {:.1} %, average {:.1} %",
        out.median_error_pct(),
        out.average_error_pct()
    );
    Ok(())
}

fn cmd_select(cli: &Cli) {
    let cfg = build_config(cli);
    let apps = suite_apps(cli);
    eprintln!("profiling on {}…", cfg.reference.name);
    let suite = profile_reference(&apps, &cfg);
    let reduced = reduce(&suite, &cfg);
    let targets = Arch::targets_scaled();
    eprintln!(
        "evaluating {} targets on {} worker thread(s) from {} representatives…",
        targets.len(),
        cfg.pool().threads(),
        reduced.n_representatives()
    );
    let cache = MicroCache::new();
    let evals = evaluate_targets(&suite, &reduced, &targets, &cache, &cfg);
    for e in &evals {
        println!(
            "{:<13} geo-mean speedup predicted {:.2} (real {:.2}), benchmarking cost x{:.1} lower",
            e.target, e.geomean.1, e.geomean.0, e.reduction.total
        );
    }
    let rank = rank_targets(&evals);
    println!("\nrecommended system: {}", rank[0].0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match cli.command {
        Command::Info => cmd_info(),
        Command::Show => cmd_show(&cli),
        Command::Reduce => cmd_reduce(&cli),
        Command::Predict => {
            if let Err(e) = cmd_predict(&cli) {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        Command::Select => cmd_select(&cli),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_commands_and_options() {
        let c = parse(&argv("reduce --suite nr --class test --k 5")).unwrap();
        assert_eq!(c.command, Command::Reduce);
        assert_eq!(c.suite, SuiteKind::Nr);
        assert_eq!(c.class, Class::Test);
        assert_eq!(c.k, KChoice::Fixed(5));
        assert_eq!(c.threads, 0, "auto-detect unless --threads given");
        assert!(!c.paper_features);

        let c = parse(&argv("select --threads 8")).unwrap();
        assert_eq!(c.threads, 8);
        assert_eq!(build_config(&c).threads, 8);
        let c = parse(&argv("select --threads 1")).unwrap();
        assert_eq!(build_config(&c).pool().threads(), 1);

        let c = parse(&argv("predict --target atom --paper-features")).unwrap();
        assert_eq!(c.command, Command::Predict);
        assert_eq!(c.target.as_deref(), Some("atom"));
        assert!(c.paper_features);

        let c = parse(&argv("select --k elbow")).unwrap();
        assert_eq!(c.command, Command::Select);
        assert_eq!(c.k, KChoice::Elbow { max_k: 24 });
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("reduce --k banana")).is_err());
        assert!(parse(&argv("reduce --suite spec")).is_err());
        assert!(parse(&argv("reduce --bogus")).is_err());
        assert!(parse(&argv("select --threads")).is_err());
        assert!(parse(&argv("select --threads many")).is_err());
    }

    #[test]
    fn resolves_targets() {
        assert_eq!(target_by_name("atom").unwrap().name, "Atom");
        assert_eq!(target_by_name("SB").unwrap().name, "Sandy Bridge");
        assert_eq!(target_by_name("core2").unwrap().name, "Core 2");
        assert!(target_by_name("vax").is_err());
        // Targets come back scaled.
        let full = Arch::atom().caches[1].size;
        assert_eq!(target_by_name("atom").unwrap().caches[1].size, full / PARK_SCALE);
    }
}

//! `fgbs` — command-line driver for the benchmark-subsetting pipeline.
//!
//! ```text
//! fgbs info                               # machine park and suite inventory
//! fgbs show    --suite nr|nas [--codelet NAME]   # pseudo-code of the codelets
//! fgbs reduce  --suite nr|nas [options]   # steps A-D: clusters + representatives
//! fgbs predict --suite nr|nas --target atom|core2|sb [options]
//! fgbs select  --suite nr|nas [options]   # full system selection across all targets
//! fgbs features [options]                 # GA feature selection + cache counters
//! fgbs serve   [--addr HOST:PORT] [options]      # system-selection daemon
//! fgbs store ls                           # list persisted pipeline artifacts
//! fgbs store gc [--keep N]                # evict all but the newest N per kind
//! fgbs snippet pack --out FILE [options]  # export a suite as a snippet pack
//! fgbs snippet unpack FILE                # decode and describe a pack
//! fgbs snippet ls                         # list ingested packs in the store
//! fgbs snippet verify FILE                # integrity + semantic validation
//! fgbs snippet replay FILE                # replay against the pack's contract
//! fgbs trace summary FILE                 # aggregate a Chrome-trace file
//! fgbs flightrec dump [--request N]       # print a stored flight-recorder dump
//! fgbs flightrec show [--request N]       # table view of a dump's event window
//! fgbs top [--addr HOST:PORT] [--interval MS] [--count N]  # live /metrics view
//! fgbs bench [--quick] [--filter SUB] [--out FILE]   # run the benchmark barometer
//! fgbs bench cmp OLD.json NEW.json        # noise-aware record comparison
//! fgbs help                               # this text
//!
//! options:
//!   --class test|a|b     dataset class (default a)
//!   --k N | --k elbow    cluster count policy (default elbow)
//!   --threads N          worker threads (0 = auto, 1 = serial; default auto)
//!   --paper-features     cluster on the paper's Table 2 feature list
//!   --results-dir DIR    experiment outputs and artifact store root (default results/)
//!   --store              persist/reuse pipeline artifacts under the results dir
//!   --trace FILE         record a Chrome trace of the run into FILE
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use fgbs::analysis::{catalog, table2_features, FeatureMask};
use fgbs::clustering::render_dendrogram;
use fgbs::core::{
    evaluate_targets, predict, profile_reference, rank_targets, reduce, select_features_ga,
    KChoice, MicroCache, PipelineConfig,
};
use fgbs::genetic::GaConfig;
use fgbs::machine::{Arch, PARK_SCALE};
use fgbs::serve::{Server, Service};
use fgbs::pool::WorkPool;
use fgbs::snippet::{build_pack, encode_pack, list_packs, parse_pack, replay_pack, verify_pack};
use fgbs::store::{ArtifactKind, Store};
use fgbs::suites::{bigdata_suite, nas_suite, nr_suite, Class, BIGDATA_APPS, NAS_APPS};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Cli {
    command: Command,
    suite: SuiteKind,
    class: Class,
    k: KChoice,
    threads: usize,
    paper_features: bool,
    target: Option<String>,
    codelet: Option<String>,
    results_dir: String,
    use_store: bool,
    addr: String,
    keep: usize,
    generations: usize,
    population: usize,
    seed: u64,
    trace: Option<String>,
    trace_file: String,
    snippet_file: String,
    fault_spec: Option<String>,
    fault_seed: u64,
    quick: bool,
    bench_filter: Option<String>,
    bench_out: Option<String>,
    bench_registry: Option<String>,
    cmp_old: String,
    cmp_new: String,
    min_change: f64,
    noise_mult: f64,
    strict: bool,
    request: Option<u64>,
    interval_ms: u64,
    count: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Info,
    Show,
    Reduce,
    Predict,
    Select,
    Features,
    Serve,
    StoreLs,
    StoreGc,
    SnippetPack,
    SnippetUnpack,
    SnippetLs,
    SnippetVerify,
    SnippetReplay,
    TraceSummary,
    FlightrecDump,
    FlightrecShow,
    Top,
    BenchRun,
    BenchCmp,
    Loadgen,
    Help,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SuiteKind {
    Nr,
    Nas,
    Bigdata,
}

impl SuiteKind {
    fn as_str(self) -> &'static str {
        match self {
            SuiteKind::Nr => "nr",
            SuiteKind::Nas => "nas",
            SuiteKind::Bigdata => "bigdata",
        }
    }
}

const USAGE: &str = "usage: fgbs <info|show|reduce|predict|select|features|serve|store|snippet|trace|flightrec|top|bench|loadgen|help> \
[--suite nr|nas|bigdata] [--class test|a|b] [--k N|elbow] [--threads N] \
[--target atom|core2|sb] [--codelet NAME] [--paper-features] \
[--results-dir DIR] [--store] [--addr HOST:PORT] [--keep N] \
[--generations N] [--population N] [--seed N] [--trace FILE] \
[--fault-spec SPEC] [--fault-seed N] [--quick] [--filter SUB] \
[--out FILE] [--registry FILE] [--min-change PCT] [--noise-mult X] [--strict] \
[--request N] [--interval MS] [--count N]";

const HELP: &str = "fgbs — fine-grained benchmark subsetting for system selection

commands:
  info                 machine park and suite inventory
  show                 pseudo-code of the codelets (filter with --codelet)
  reduce               steps A-D: clusters + representatives
  predict              predict a target from representatives (--target required)
  select               full system selection across the machine park
  features             GA feature selection; reports fitness/store cache counters
  serve                HTTP system-selection daemon (endpoints: /predict /sweep
                       /reduce /snippets /artifacts /metrics /trace /health)
  store ls             list persisted pipeline artifacts
  store gc             evict all but the newest --keep artifacts per kind
  snippet pack         export a suite (--suite/--class) as a portable,
                       checksummed snippet pack (--out FILE required)
  snippet unpack FILE  decode a pack and describe every snippet in it
  snippet ls           list snippet packs ingested into the artifact store
  snippet verify FILE  validate a pack's integrity without executing it
  snippet replay FILE  execute a pack and check its bitwise replay contract
  trace summary FILE   aggregate a Chrome-trace file into a per-span table
  flightrec dump       print the newest stored flight-recorder dump as JSON
                       (--request N picks the dump for one request id)
  flightrec show       human-readable table of a dump's last-N-events window
  top                  poll a running daemon's /metrics: per-series
                       throughput, p50/p95/p99, fault and store counters,
                       in-flight requests (--interval MS, --count N)
  bench                run the declarative benchmark registry; prints per-
                       benchmark medians/noise and evaluates declared perf
                       gates (--quick for the fast subset, --out to record)
  bench cmp OLD NEW    compare two bench records with per-benchmark noise
                       thresholds; exits non-zero on regression
  loadgen              drive in-process serve load: the event loop vs the
                       blocking thread-per-connection baseline at 64
                       concurrent connections; records gated `serve/*`
                       barometer rows (mean, p99, wall/req) plus the
                       calibration anchor (--quick, --out like bench)
  help                 this text

options:
  --suite nr|nas|bigdata  benchmark suite (default nas)
  --class test|a|b     dataset class (default a)
  --k N|elbow          cluster count policy (default elbow)
  --threads N          worker threads; for serve: connection workers (0 = auto)
  --target NAME        atom | core2 | sb (predict; serve default target)
  --codelet NAME       substring filter for show
  --paper-features     cluster on the paper's Table 2 feature list
  --results-dir DIR    experiment outputs and artifact store root (default results/)
  --store              persist/reuse pipeline artifacts in DIR/store
  --addr HOST:PORT     serve bind address (default 127.0.0.1:8422)
  --keep N             store gc: artifacts kept per kind (default 4)
  --generations N      features: GA generations (default 12)
  --population N       features: GA population (default 40)
  --seed N             features: GA seed (default 7)
  --trace FILE         record a Chrome trace (chrome://tracing) of the run
  --fault-spec SPEC    arm deterministic failpoints for chaos testing, e.g.
                       'store.read=err:0.2#3,stage.reduce=delay:50'
                       (actions: err|delay[:ms]|short[:keep]|corrupt)
  --fault-seed N       seed for failpoint decisions: same spec + seed + run
                       order reproduces the exact same injected faults
  --quick              bench: fewer iterations, skip the slowest entries
  --filter SUB         bench: only benchmarks whose id contains SUB
  --out FILE           bench: write the JSON measurement record to FILE
  --registry FILE      bench: load the registry from FILE (default built-in)
  --min-change PCT     bench cmp: smallest change ever flagged (default 10)
  --noise-mult X       bench cmp: noise-floor multiplier (default 4)
  --strict             bench cmp: also fail when records diverge in content
  --request N          flightrec: select the dump captured for request N
  --interval MS        top: poll period in milliseconds (default 1000)
  --count N            top: number of polls before exiting (0 = forever)";

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: Command::Info,
        suite: SuiteKind::Nas,
        class: Class::A,
        k: KChoice::Elbow { max_k: 24 },
        threads: 0, // the CLI defaults to all available cores
        paper_features: false,
        target: None,
        codelet: None,
        results_dir: "results".to_string(),
        use_store: false,
        addr: "127.0.0.1:8422".to_string(),
        keep: 4,
        generations: 12,
        population: 40,
        seed: 7,
        trace: None,
        trace_file: String::new(),
        snippet_file: String::new(),
        fault_spec: None,
        fault_seed: 0,
        quick: false,
        bench_filter: None,
        bench_out: None,
        bench_registry: None,
        cmp_old: String::new(),
        cmp_new: String::new(),
        min_change: 10.0,
        noise_mult: 4.0,
        strict: false,
        request: None,
        interval_ms: 1000,
        count: 0,
    };
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("info") => cli.command = Command::Info,
        Some("show") => cli.command = Command::Show,
        Some("reduce") => cli.command = Command::Reduce,
        Some("predict") => cli.command = Command::Predict,
        Some("select") => cli.command = Command::Select,
        Some("features") => cli.command = Command::Features,
        Some("serve") => cli.command = Command::Serve,
        Some("store") => {
            cli.command = match it.next().map(String::as_str) {
                Some("ls") => Command::StoreLs,
                Some("gc") => Command::StoreGc,
                Some(other) => return Err(format!("unknown store subcommand `{other}` (ls|gc)")),
                None => return Err("store expects a subcommand: ls|gc".to_string()),
            }
        }
        Some("snippet") => {
            let pack_file = |verb: &str,
                             it: &mut std::slice::Iter<'_, String>|
             -> Result<String, String> {
                match it.next() {
                    Some(f) if !f.starts_with('-') => Ok(f.clone()),
                    _ => Err(format!("snippet {verb} expects a pack file path")),
                }
            };
            cli.command = match it.next().map(String::as_str) {
                Some("pack") => Command::SnippetPack,
                Some("unpack") => {
                    cli.snippet_file = pack_file("unpack", &mut it)?;
                    Command::SnippetUnpack
                }
                Some("ls") => Command::SnippetLs,
                Some("verify") => {
                    cli.snippet_file = pack_file("verify", &mut it)?;
                    Command::SnippetVerify
                }
                Some("replay") => {
                    cli.snippet_file = pack_file("replay", &mut it)?;
                    Command::SnippetReplay
                }
                Some(other) => {
                    return Err(format!(
                        "unknown snippet subcommand `{other}` (pack|unpack|ls|verify|replay)"
                    ))
                }
                None => {
                    return Err(
                        "snippet expects a subcommand: pack|unpack|ls|verify|replay".to_string()
                    )
                }
            }
        }
        Some("trace") => {
            cli.command = match it.next().map(String::as_str) {
                Some("summary") => {
                    cli.trace_file = it
                        .next()
                        .ok_or_else(|| "trace summary expects a trace file path".to_string())?
                        .clone();
                    Command::TraceSummary
                }
                Some(other) => {
                    return Err(format!("unknown trace subcommand `{other}` (summary)"))
                }
                None => return Err("trace expects a subcommand: summary FILE".to_string()),
            }
        }
        Some("flightrec") => {
            cli.command = match it.next().map(String::as_str) {
                Some("dump") => Command::FlightrecDump,
                Some("show") => Command::FlightrecShow,
                Some(other) => {
                    return Err(format!("unknown flightrec subcommand `{other}` (dump|show)"))
                }
                None => return Err("flightrec expects a subcommand: dump|show".to_string()),
            }
        }
        Some("top") => cli.command = Command::Top,
        Some("bench") => {
            // `bench cmp OLD NEW` vs plain `bench [options]`: peek so an
            // option token is not swallowed as a subcommand.
            if it.as_slice().first().map(String::as_str) == Some("cmp") {
                it.next();
                cli.cmp_old = it
                    .next()
                    .ok_or_else(|| "bench cmp expects OLD.json NEW.json".to_string())?
                    .clone();
                cli.cmp_new = it
                    .next()
                    .ok_or_else(|| "bench cmp expects OLD.json NEW.json".to_string())?
                    .clone();
                cli.command = Command::BenchCmp;
            } else {
                cli.command = Command::BenchRun;
            }
        }
        Some("loadgen") => cli.command = Command::Loadgen,
        Some("help") | Some("--help") | Some("-h") => cli.command = Command::Help,
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => {
                cli.suite = match it.next().map(String::as_str) {
                    Some("nr") => SuiteKind::Nr,
                    Some("nas") => SuiteKind::Nas,
                    Some("bigdata") => SuiteKind::Bigdata,
                    other => return Err(format!("--suite nr|nas|bigdata, got {other:?}")),
                }
            }
            "--class" => {
                cli.class = match it.next().map(String::as_str) {
                    Some("test") => Class::Test,
                    Some("a") => Class::A,
                    Some("b") => Class::B,
                    other => return Err(format!("--class test|a|b, got {other:?}")),
                }
            }
            "--k" => {
                cli.k = match it.next().map(String::as_str) {
                    Some("elbow") => KChoice::Elbow { max_k: 24 },
                    Some(n) => KChoice::Fixed(
                        n.parse()
                            .map_err(|_| format!("--k expects a number or `elbow`, got `{n}`"))?,
                    ),
                    None => return Err("--k expects a value".into()),
                }
            }
            "--threads" => cli.threads = parse_num(&mut it, "--threads")?,
            "--target" => {
                cli.target = Some(
                    it.next()
                        .ok_or_else(|| "--target expects a value".to_string())?
                        .clone(),
                )
            }
            "--codelet" => {
                cli.codelet = Some(
                    it.next()
                        .ok_or_else(|| "--codelet expects a name".to_string())?
                        .clone(),
                )
            }
            "--paper-features" => cli.paper_features = true,
            "--results-dir" => {
                cli.results_dir = it
                    .next()
                    .ok_or_else(|| "--results-dir expects a path".to_string())?
                    .clone()
            }
            "--store" => cli.use_store = true,
            "--addr" => {
                cli.addr = it
                    .next()
                    .ok_or_else(|| "--addr expects HOST:PORT".to_string())?
                    .clone()
            }
            "--keep" => cli.keep = parse_num(&mut it, "--keep")?,
            "--trace" => {
                cli.trace = Some(
                    it.next()
                        .ok_or_else(|| "--trace expects a file path".to_string())?
                        .clone(),
                )
            }
            "--generations" => cli.generations = parse_num(&mut it, "--generations")?,
            "--population" => cli.population = parse_num(&mut it, "--population")?,
            "--seed" => cli.seed = parse_num(&mut it, "--seed")?,
            "--fault-spec" => {
                cli.fault_spec = Some(
                    it.next()
                        .ok_or_else(|| {
                            "--fault-spec expects site=action[:prob[:param]][#maxfires],…"
                                .to_string()
                        })?
                        .clone(),
                )
            }
            "--fault-seed" => cli.fault_seed = parse_num(&mut it, "--fault-seed")?,
            "--quick" => cli.quick = true,
            "--filter" => {
                cli.bench_filter = Some(
                    it.next()
                        .ok_or_else(|| "--filter expects an id substring".to_string())?
                        .clone(),
                )
            }
            "--out" => {
                cli.bench_out = Some(
                    it.next()
                        .ok_or_else(|| "--out expects a file path".to_string())?
                        .clone(),
                )
            }
            "--registry" => {
                cli.bench_registry = Some(
                    it.next()
                        .ok_or_else(|| "--registry expects a file path".to_string())?
                        .clone(),
                )
            }
            "--min-change" => cli.min_change = parse_num(&mut it, "--min-change")?,
            "--noise-mult" => cli.noise_mult = parse_num(&mut it, "--noise-mult")?,
            "--strict" => cli.strict = true,
            "--request" => cli.request = Some(parse_num(&mut it, "--request")?),
            "--interval" => cli.interval_ms = parse_num(&mut it, "--interval")?,
            "--count" => cli.count = parse_num(&mut it, "--count")?,
            // Distinguish a mistyped flag from a stray positional so
            // `fgbs info extra` fails loudly instead of pretending
            // `extra` was an option.
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n{USAGE}"))
            }
            other => return Err(format!("unexpected trailing argument `{other}`\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn parse_num<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    match it.next() {
        Some(n) => n
            .parse()
            .map_err(|_| format!("{flag} expects a number, got `{n}`")),
        None => Err(format!("{flag} expects a value")),
    }
}

fn target_by_name(name: &str) -> Result<Arch, String> {
    let arch = match name.to_ascii_lowercase().as_str() {
        "atom" => Arch::atom(),
        "core2" | "core-2" | "core 2" => Arch::core2(),
        "sb" | "sandybridge" | "sandy-bridge" => Arch::sandy_bridge(),
        "nehalem" | "ref" => Arch::nehalem(),
        other => return Err(format!("unknown target `{other}` (atom|core2|sb)")),
    };
    Ok(arch.scaled(PARK_SCALE))
}

/// The artifact store under the results dir (`<results-dir>/store`).
/// Opened in self-healing mode: a corrupt MANIFEST is quarantined and
/// rebuilt from the surviving objects instead of refusing to start.
fn open_store(cli: &Cli) -> Result<Arc<Store>, String> {
    let root = PathBuf::from(&cli.results_dir).join("store");
    Store::open_healing(&root)
        .map(Arc::new)
        .map_err(|e| format!("cannot open store at {}: {e}", root.display()))
}

fn build_config(cli: &Cli) -> Result<PipelineConfig, String> {
    let mut cfg = PipelineConfig::default().with_k(cli.k).with_threads(cli.threads);
    if cli.paper_features {
        cfg = cfg.with_features(FeatureMask::from_ids(&table2_features()));
    }
    if cli.use_store {
        cfg = cfg.with_store(open_store(cli)?);
    }
    Ok(cfg)
}

fn suite_apps(cli: &Cli) -> Vec<fgbs::extract::Application> {
    match cli.suite {
        SuiteKind::Nr => nr_suite(cli.class),
        SuiteKind::Nas => nas_suite(cli.class),
        SuiteKind::Bigdata => bigdata_suite(cli.class),
    }
}

fn class_name(class: Class) -> &'static str {
    match class {
        Class::Test => "test",
        Class::A => "a",
        Class::B => "b",
    }
}

fn cmd_info() {
    println!("machine park (simulated at 1/{PARK_SCALE} cache capacity):");
    for a in Arch::park_scaled() {
        let caches: Vec<String> = a
            .caches
            .iter()
            .enumerate()
            .map(|(i, c)| format!("L{} {} KB", i + 1, c.size / 1024))
            .collect();
        println!(
            "  {:<13} {} @ {:.2} GHz, {}, {}",
            a.name,
            a.cpu,
            a.freq_ghz,
            if a.in_order { "in-order" } else { "out-of-order" },
            caches.join(" / ")
        );
    }
    println!("\nsuites:");
    println!("  nr  — 28 Numerical Recipes kernels (Table 3), one codelet each");
    println!(
        "  nas — {} NAS-like applications: {}",
        NAS_APPS.len(),
        NAS_APPS.join(", ")
    );
    println!(
        "  bigdata — {} data-intensive applications: {}",
        BIGDATA_APPS.len(),
        BIGDATA_APPS.join(", ")
    );
}

fn cmd_show(cli: &Cli) {
    let apps = suite_apps(cli);
    for app in &apps {
        for c in &app.codelets {
            if let Some(filter) = &cli.codelet {
                if !c.qualified_name().contains(filter.as_str()) {
                    continue;
                }
            }
            print!("{c}");
            println!(
                "  # pattern: {} | strides: {} | {}",
                c.pattern,
                c.stride_summary(),
                if c.extractable { "extractable" } else { "not extractable" }
            );
            println!();
        }
    }
}

fn cmd_reduce(cli: &Cli) -> Result<(), String> {
    let cfg = build_config(cli)?;
    let apps = suite_apps(cli);
    eprintln!("profiling on {}…", cfg.reference.name);
    let suite = profile_reference(&apps, &cfg);
    let reduced = reduce(&suite, &cfg);
    println!(
        "{} codelets ({:.0} % coverage) -> {} clusters, {} ill-behaved",
        suite.len(),
        100.0 * suite.coverage,
        reduced.n_representatives(),
        reduced.ill_behaved.len()
    );
    for (i, c) in reduced.clusters.iter().enumerate() {
        println!(
            "cluster {:>2}: <{}> + {} sibling(s)",
            i + 1,
            suite.codelets[c.representative].name,
            c.members.len() - 1
        );
    }
    let labels: Vec<String> = suite.codelets.iter().map(|c| c.name.clone()).collect();
    println!("\ndendrogram:");
    print!("{}", render_dendrogram(&reduced.dendrogram, &labels, 36));
    report_store(&cfg);
    Ok(())
}

fn cmd_predict(cli: &Cli) -> Result<(), String> {
    let name = cli
        .target
        .as_deref()
        .ok_or("predict requires --target atom|core2|sb")?;
    let target = target_by_name(name)?;
    let cfg = build_config(cli)?;
    let apps = suite_apps(cli);
    eprintln!("profiling on {}…", cfg.reference.name);
    let suite = profile_reference(&apps, &cfg);
    let reduced = reduce(&suite, &cfg);
    eprintln!(
        "measuring {} representatives on {}…",
        reduced.n_representatives(),
        target.name
    );
    let out = predict(&suite, &reduced, &target, &cfg);
    println!("{:<28} {:>12} {:>12} {:>8}", "codelet", "real", "predicted", "err %");
    for p in &out.predictions {
        println!(
            "{:<28} {:>9.1} us {:>9.1} us {:>8.1}",
            suite.codelets[p.codelet].name,
            p.real_seconds * 1e6,
            p.predicted_seconds.unwrap_or(f64::NAN) * 1e6,
            p.error_pct.unwrap_or(f64::NAN)
        );
    }
    println!(
        "\nmedian error {:.1} %, average {:.1} %",
        out.median_error_pct(),
        out.average_error_pct()
    );
    report_store(&cfg);
    Ok(())
}

fn cmd_select(cli: &Cli) -> Result<(), String> {
    let cfg = build_config(cli)?;
    let apps = suite_apps(cli);
    eprintln!("profiling on {}…", cfg.reference.name);
    let suite = profile_reference(&apps, &cfg);
    let reduced = reduce(&suite, &cfg);
    let targets = Arch::targets_scaled();
    eprintln!(
        "evaluating {} targets on {} worker thread(s) from {} representatives…",
        targets.len(),
        cfg.pool().threads(),
        reduced.n_representatives()
    );
    let cache = MicroCache::new();
    let evals = evaluate_targets(&suite, &reduced, &targets, &cache, &cfg);
    for e in &evals {
        println!(
            "{:<13} geo-mean speedup predicted {:.2} (real {:.2}), benchmarking cost x{:.1} lower",
            e.target, e.geomean.1, e.geomean.0, e.reduction.total
        );
    }
    let rank = rank_targets(&evals);
    println!("\nrecommended system: {}", rank[0].0);
    report_store(&cfg);
    Ok(())
}

fn cmd_features(cli: &Cli) -> Result<(), String> {
    let cfg = build_config(cli)?;
    let apps = suite_apps(cli);
    eprintln!("profiling on {}…", cfg.reference.name);
    let suite = profile_reference(&apps, &cfg);
    let targets = vec![
        Arch::atom().scaled(PARK_SCALE),
        Arch::sandy_bridge().scaled(PARK_SCALE),
    ];
    let ga = GaConfig {
        population: cli.population,
        generations: cli.generations,
        seed: cli.seed,
        ..GaConfig::default()
    };
    eprintln!(
        "GA feature selection: population {}, {} generations, seed {}…",
        ga.population, ga.generations, ga.seed
    );
    let sel = select_features_ga(&suite, &targets, &ga, &cfg);
    print_ga_progress(&fgbs::trace::snapshot());
    println!(
        "selected {} features (fitness {:.2}, elbow K = {}):",
        sel.feature_ids.len(),
        sel.fitness,
        sel.k
    );
    let cat = catalog();
    for id in &sel.feature_ids {
        println!("  - {} [{:?}]", cat[*id].name, cat[*id].kind);
    }
    println!(
        "\ncounters: {} evaluations, fitness cache {} hits / {} misses, \
         store {} hits / {} misses, {} warm-start entries",
        sel.evaluations,
        sel.cache_hits,
        sel.cache_misses,
        sel.store_hits,
        sel.store_misses,
        sel.warm_entries
    );
    Ok(())
}

fn cmd_serve(cli: &Cli) -> Result<(), String> {
    let store = open_store(cli)?;
    // Failing requests (503s, quarantines, armed failpoints, panics)
    // dump their flight-recorder window into the store as diagnostic
    // artifacts; `fgbs flightrec dump|show` reads them back.
    fgbs::serve::install_diagnostic_sink(Arc::clone(&store));
    // Requests run the pipeline serially; concurrency comes from the
    // connection workers, so identical queries stay deterministic.
    let mut cfg = PipelineConfig::default().with_k(cli.k).with_threads(1);
    if cli.paper_features {
        cfg = cfg.with_features(FeatureMask::from_ids(&table2_features()));
    }
    let service = Arc::new(Service::new(cfg, store));
    let server = Server::start(&cli.addr, cli.threads, service)
        .map_err(|e| format!("cannot bind {}: {e}", cli.addr))?;
    println!("fgbs-serve listening on http://{}", server.addr());
    println!("store: {}/store — try: curl 'http://{}/predict?suite=nr&class=test&target=atom'",
        cli.results_dir, server.addr());
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_store_ls(cli: &Cli) -> Result<(), String> {
    let store = open_store(cli)?;
    let mut artifacts = store.list();
    artifacts.sort_by(|a, b| (a.kind.as_str(), &a.key).cmp(&(b.kind.as_str(), &b.key)));
    println!("{:<10} {:<34} {:>10} {:>12}", "kind", "key", "bytes", "stored_at");
    for m in &artifacts {
        println!(
            "{:<10} {:<34} {:>10} {:>12}",
            m.kind.as_str(),
            m.key,
            m.bytes,
            m.stored_at
        );
    }
    println!("{} artifact(s) at {}", artifacts.len(), store.root().display());
    let problems = store.verify();
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("integrity: {p}");
        }
        return Err(format!("{} integrity problem(s) found", problems.len()));
    }
    Ok(())
}

fn cmd_store_gc(cli: &Cli) -> Result<(), String> {
    let store = open_store(cli)?;
    let report = store
        .gc(cli.keep)
        .map_err(|e| format!("gc failed: {e}"))?;
    println!(
        "evicted {} artifact(s), freed {} bytes (keeping newest {} per kind)",
        report.removed, report.bytes_freed, cli.keep
    );
    Ok(())
}

/// `fgbs snippet pack`: export a suite as a portable snippet pack.
fn cmd_snippet_pack(cli: &Cli) -> Result<(), String> {
    let out = cli
        .bench_out
        .as_deref()
        .ok_or("snippet pack requires --out FILE")?;
    let apps = suite_apps(cli);
    let pool = WorkPool::new(cli.threads);
    let class = class_name(cli.class);
    let pack = build_pack(
        &format!("{}-{class}", cli.suite.as_str()),
        cli.suite.as_str(),
        &format!("class={class}"),
        &apps,
        &pool,
    )?;
    let bytes = encode_pack(&pack);
    let summary = verify_pack(&bytes).map_err(|e| format!("freshly packed bytes invalid: {e}"))?;
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "packed {} snippet(s) from {} {} app(s) -> {out} ({} bytes, id {})",
        summary.snippets,
        apps.len(),
        cli.suite.as_str(),
        summary.bytes,
        summary.id
    );
    Ok(())
}

fn read_pack_file(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// `fgbs snippet unpack`: decode a pack and describe its contents.
fn cmd_snippet_unpack(cli: &Cli) -> Result<(), String> {
    let bytes = read_pack_file(&cli.snippet_file)?;
    let pack = parse_pack(&bytes).map_err(|e| format!("{}: {e}", cli.snippet_file))?;
    println!(
        "pack {} (suite {}, extraction {}, {} snippet(s))",
        pack.name, pack.provenance.suite, pack.provenance.extraction, pack.snippets.len()
    );
    println!(
        "{:<28} {:>9} {:>9} {:>18}",
        "codelet", "contexts", "features", "contract digest"
    );
    for s in &pack.snippets {
        println!(
            "{:<28} {:>9} {:>9} {:>18}",
            s.codelet.qualified_name(),
            s.contexts.len(),
            s.features.len(),
            format!("{:016x}", s.contract.digest)
        );
    }
    Ok(())
}

/// `fgbs snippet ls`: the packs ingested into the artifact store.
fn cmd_snippet_ls(cli: &Cli) -> Result<(), String> {
    let store = open_store(cli)?;
    let packs = list_packs(&store);
    println!("{:<34} {:>10} {:>12}", "id", "bytes", "stored_at");
    for m in &packs {
        println!("{:<34} {:>10} {:>12}", m.key, m.bytes, m.stored_at);
    }
    println!("{} pack(s) at {}", packs.len(), store.root().display());
    Ok(())
}

/// `fgbs snippet verify`: full integrity + semantic validation, no
/// execution. Exits non-zero on any corruption.
fn cmd_snippet_verify(cli: &Cli) -> Result<(), String> {
    let bytes = read_pack_file(&cli.snippet_file)?;
    let s = verify_pack(&bytes).map_err(|e| format!("{}: INVALID: {e}", cli.snippet_file))?;
    println!(
        "{}: ok — pack {} (suite {}, schema {}, {} snippet(s), {} bytes, id {})",
        cli.snippet_file, s.name, s.suite, s.schema, s.snippets, s.bytes, s.id
    );
    Ok(())
}

/// `fgbs snippet replay`: execute every snippet and check the bitwise
/// replay contract. Exits non-zero if any digest diverges.
fn cmd_snippet_replay(cli: &Cli) -> Result<(), String> {
    let bytes = read_pack_file(&cli.snippet_file)?;
    let pack = parse_pack(&bytes).map_err(|e| format!("{}: {e}", cli.snippet_file))?;
    let pool = WorkPool::new(cli.threads);
    let report = replay_pack(&pack, &pool)?;
    for o in &report.outcomes {
        println!(
            "{:<28} expected {:016x} actual {:016x} {}",
            o.name,
            o.expected,
            o.actual,
            if o.ok { "ok" } else { "FAIL" }
        );
    }
    let failures = report.failures();
    if failures.is_empty() {
        println!(
            "{} snippet(s) replayed bitwise-identical on {} thread(s)",
            report.outcomes.len(),
            pool.threads()
        );
        Ok(())
    } else {
        Err(format!(
            "{} of {} snippet(s) broke the replay contract",
            failures.len(),
            report.outcomes.len()
        ))
    }
}

/// The per-generation GA progress table (`ga.generation` trace spans
/// carry `gen`/`best`/`mean` arguments recorded by the GA driver).
fn print_ga_progress(trace: &fgbs::trace::Trace) {
    let spans = trace.spans_named("ga.generation");
    if spans.is_empty() {
        return;
    }
    let arg = |s: &fgbs::trace::SpanRecord, key: &str| -> Option<f64> {
        s.args.iter().find(|(k, _)| *k == key).map(|(_, v)| match v {
            fgbs::trace::ArgValue::U64(n) => *n as f64,
            fgbs::trace::ArgValue::F64(x) => *x,
            fgbs::trace::ArgValue::Str(_) => f64::NAN,
        })
    };
    println!("{:>4} {:>14} {:>14}", "gen", "best", "mean");
    for s in spans {
        let gen = arg(s, "gen").unwrap_or(f64::NAN);
        let best = arg(s, "best").unwrap_or(f64::NAN);
        let mean = arg(s, "mean").unwrap_or(f64::NAN);
        println!("{gen:>4} {best:>14.3} {mean:>14.3}");
    }
    println!();
}

fn cmd_trace_summary(cli: &Cli) -> Result<(), String> {
    let raw = std::fs::read_to_string(&cli.trace_file)
        .map_err(|e| format!("cannot read {}: {e}", cli.trace_file))?;
    let doc = fgbs::trace::Json::parse(&raw)
        .map_err(|e| format!("{} is not valid JSON: {e}", cli.trace_file))?;
    let summary = fgbs::trace::summary::summarize(&doc)
        .map_err(|e| format!("{} is not a Chrome trace: {e}", cli.trace_file))?;
    print!("{}", summary.render());
    Ok(())
}

/// Load the diagnostic flight-recorder dump selected by `--request`
/// (or the newest one) from the results store. Returns the artifact key
/// and the parsed dump document.
fn load_flightrec_dump(cli: &Cli) -> Result<(String, fgbs::trace::Json), String> {
    let store = open_store(cli)?;
    let mut dumps: Vec<_> = store
        .list()
        .into_iter()
        .filter(|m| m.kind == ArtifactKind::Diagnostic)
        .collect();
    // Newest first; the key ends in the capture timestamp, which breaks
    // same-second `stored_at` ties.
    dumps.sort_by(|a, b| (b.stored_at, &b.key).cmp(&(a.stored_at, &a.key)));
    for m in &dumps {
        let Ok(Some(bytes)) = store.get(ArtifactKind::Diagnostic, &m.key) else {
            continue;
        };
        let raw = String::from_utf8_lossy(&bytes).into_owned();
        let Ok(doc) = fgbs::trace::Json::parse(&raw) else {
            continue;
        };
        if let Some(want) = cli.request {
            if doc.get("request").and_then(fgbs::trace::Json::as_u64) != Some(want) {
                continue;
            }
        }
        return Ok((m.key.clone(), doc));
    }
    Err(match cli.request {
        Some(r) => format!("no diagnostic dump for request {r} in the store"),
        None => "no diagnostic dumps in the store (nothing has failed yet)".to_string(),
    })
}

/// `fgbs flightrec dump`: the selected dump as machine-readable JSON.
fn cmd_flightrec_dump(cli: &Cli) -> Result<(), String> {
    let (_, doc) = load_flightrec_dump(cli)?;
    println!("{}", doc.render());
    Ok(())
}

/// `fgbs flightrec show`: the selected dump as a human-readable event
/// table — what the failing request (and its neighbours) did in the
/// moments before the trigger fired.
fn cmd_flightrec_show(cli: &Cli) -> Result<(), String> {
    let (key, doc) = load_flightrec_dump(cli)?;
    let reason = doc.get("reason").and_then(fgbs::trace::Json::as_str).unwrap_or("?");
    let request = doc.get("request").and_then(fgbs::trace::Json::as_u64).unwrap_or(0);
    let events = doc
        .get("events")
        .and_then(fgbs::trace::Json::as_arr)
        .ok_or_else(|| format!("dump {key} has no event array"))?;
    println!(
        "flight recorder dump {key}: reason {reason}, request {request}, {} event(s)",
        events.len()
    );
    let t0 = events
        .first()
        .and_then(|e| e.get("ts_ns"))
        .and_then(fgbs::trace::Json::as_u64)
        .unwrap_or(0);
    println!(
        "{:>12} {:>6} {:>4} {:<8} {:<28} {:>12}",
        "t+us", "req", "tid", "kind", "name", "value"
    );
    for e in events {
        let f = |k: &str| e.get(k).and_then(fgbs::trace::Json::as_u64).unwrap_or(0);
        println!(
            "{:>12.1} {:>6} {:>4} {:<8} {:<28} {:>12}",
            f("ts_ns").saturating_sub(t0) as f64 / 1e3,
            f("req"),
            f("tid"),
            e.get("kind").and_then(fgbs::trace::Json::as_str).unwrap_or("?"),
            e.get("name").and_then(fgbs::trace::Json::as_str).unwrap_or("?"),
            f("value"),
        );
    }
    Ok(())
}

/// One blocking `GET /metrics` against a running daemon.
fn fetch_metrics(addr: &str) -> Result<fgbs::trace::Json, String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e} (is `fgbs serve` running?)"))?;
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: fgbs\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("{addr}: {e}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .ok_or_else(|| format!("{addr}: malformed /metrics response"))?;
    fgbs::trace::Json::parse(body).map_err(|e| format!("{addr}: /metrics is not JSON: {e}"))
}

/// `fgbs top`: poll `/metrics` and render a compact live view —
/// per-series throughput and latency quantiles, store and fault
/// counters, in-flight requests.
fn cmd_top(cli: &Cli) -> Result<(), String> {
    let mut prev: Option<(std::time::Instant, Vec<(String, u64)>)> = None;
    let mut polls = 0u64;
    loop {
        let doc = fetch_metrics(&cli.addr)?;
        let now = std::time::Instant::now();
        let g = |path: &[&str]| -> u64 {
            let mut node = &doc;
            for k in path {
                match node.get(k) {
                    Some(n) => node = n,
                    None => return 0,
                }
            }
            node.as_u64().unwrap_or(0)
        };
        println!(
            "fgbs top — {} | in-flight {} | computations {} | coalesced {}",
            cli.addr,
            g(&["in_flight"]),
            g(&["computations"]),
            g(&["flight", "coalesced"])
        );
        println!(
            "store: {} hits / {} misses / {} puts, {} quarantine(s), {} artifact(s)",
            g(&["store", "hits"]),
            g(&["store", "misses"]),
            g(&["store", "puts"]),
            g(&["store", "quarantines"]),
            g(&["store", "artifacts"])
        );
        println!(
            "faults: {} injected, {} retries, {} deadline(s) expired, {} panic(s)",
            g(&["trace", "stats", "fault.injected"]),
            g(&["trace", "stats", "fault.retries"]),
            g(&["trace", "stats", "serve.deadline_expired"]),
            g(&["trace", "stats", "serve.panics"])
        );
        println!(
            "{:<16} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "series", "count", "req/s", "p50_us", "p95_us", "p99_us", "ewma_us"
        );
        let mut counts: Vec<(String, u64)> = Vec::new();
        if let Some(fgbs::trace::Json::Obj(series)) = doc.get("requests") {
            for (name, s) in series {
                let v = |k: &str| s.get(k).and_then(fgbs::trace::Json::as_u64).unwrap_or(0);
                let count = v("count");
                counts.push((name.clone(), count));
                if count == 0 {
                    continue;
                }
                let rate = prev
                    .as_ref()
                    .and_then(|(t, cs)| {
                        let old = cs.iter().find(|(n, _)| n == name)?.1;
                        let dt = now.duration_since(*t).as_secs_f64();
                        (dt > 0.0).then(|| (count.saturating_sub(old)) as f64 / dt)
                    })
                    .unwrap_or(0.0);
                let ewma = s
                    .get("ewma_micros")
                    .and_then(fgbs::trace::Json::as_f64)
                    .unwrap_or(0.0);
                println!(
                    "{:<16} {:>8} {:>8.1} {:>10} {:>10} {:>10} {:>10.1}",
                    name,
                    count,
                    rate,
                    v("p50"),
                    v("p95"),
                    v("p99"),
                    ewma
                );
            }
        }
        prev = Some((now, counts));
        polls += 1;
        if cli.count != 0 && polls >= cli.count {
            return Ok(());
        }
        println!();
        std::thread::sleep(std::time::Duration::from_millis(cli.interval_ms.max(50)));
    }
}

/// Load `--registry FILE` when given, else the built-in catalogue.
fn bench_registry(cli: &Cli) -> Result<fgbs::bench::barometer::Registry, String> {
    match &cli.bench_registry {
        Some(path) => {
            let raw = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read registry {path}: {e}"))?;
            fgbs::bench::barometer::Registry::parse(&raw)
        }
        None => Ok(fgbs::bench::barometer::Registry::builtin()),
    }
}

fn cmd_bench_run(cli: &Cli) -> Result<(), String> {
    let reg = bench_registry(cli)?;
    let threads = if cli.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cli.threads
    };
    let opts = fgbs::bench::barometer::RunOptions {
        quick: cli.quick,
        filter: cli.bench_filter.clone(),
        threads,
    };
    eprintln!(
        "benchmark barometer: {} mode, {} worker thread(s)…",
        if cli.quick { "quick" } else { "full" },
        threads
    );
    let out = fgbs::bench::barometer::run_registry(&reg, &opts)?;
    print!("{}", fgbs::bench::barometer::render_report(&out));
    if let Some(path) = &cli.bench_out {
        std::fs::write(path, out.record.render())
            .map_err(|e| format!("cannot write record to {path}: {e}"))?;
        eprintln!("record -> {path}");
    }
    let failed = out.failed_gates();
    if !failed.is_empty() {
        let ids: Vec<&str> = failed.iter().map(|g| g.id.as_str()).collect();
        return Err(format!(
            "{} perf gate(s) failed: {}",
            failed.len(),
            ids.join(", ")
        ));
    }
    Ok(())
}

fn cmd_bench_cmp(cli: &Cli) -> Result<(), String> {
    let load = |path: &str| -> Result<fgbs::bench::barometer::Record, String> {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read record {path}: {e}"))?;
        fgbs::bench::barometer::Record::parse(&raw).map_err(|e| format!("{path}: {e}"))
    };
    let old = load(&cli.cmp_old)?;
    let new = load(&cli.cmp_new)?;
    let opts = fgbs::bench::barometer::CmpOptions {
        min_change_pct: cli.min_change,
        noise_mult: cli.noise_mult,
        strict: cli.strict,
    };
    let report = fgbs::bench::barometer::compare(&old, &new, &opts);
    print!("{}", report.render());
    match report.failure(&opts) {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

/// `fgbs loadgen`: run only the `serve/*` barometer rows (plus the
/// calibration anchor, so cross-machine `bench cmp` can normalize),
/// print per-mode latency/throughput, and optionally record the result.
fn cmd_loadgen(cli: &Cli) -> Result<(), String> {
    let full = bench_registry(cli)?;
    let reg = fgbs::bench::barometer::Registry {
        schema: full.schema,
        benchmarks: full
            .benchmarks
            .iter()
            .filter(|b| b.suite == "serve" || b.suite == "calibration")
            .cloned()
            .collect(),
    };
    if !reg.benchmarks.iter().any(|b| b.suite == "serve") {
        return Err("the registry has no `serve` benchmarks".to_string());
    }
    let threads = if cli.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cli.threads
    };
    let opts = fgbs::bench::barometer::RunOptions {
        quick: cli.quick,
        filter: cli.bench_filter.clone(),
        threads,
    };
    eprintln!(
        "serve loadgen: {} mode, event loop vs blocking baseline…",
        if cli.quick { "quick" } else { "full" }
    );
    let out = fgbs::bench::barometer::run_registry(&reg, &opts)?;
    print!("{}", fgbs::bench::barometer::render_report(&out));
    // Per-mode summary: the wall rows are ns per completed request, so
    // their reciprocal is throughput.
    println!();
    for (label, hot, p99, wall) in [
        (
            "event   ",
            "serve/hot_event/n64/t4",
            "serve/p99_event/n64/t4",
            "serve/wall_event/n64/t4",
        ),
        (
            "blocking",
            "serve/hot_blocking/n64/t4",
            "serve/p99_blocking/n64/t4",
            "serve/wall_blocking/n64/t4",
        ),
    ] {
        let median = |id: &str| out.record.find(id).map(|b| b.median_ns);
        if let (Some(hot), Some(p99), Some(wall)) = (median(hot), median(p99), median(wall)) {
            println!(
                "{label}  mean {:>10}  p99 {:>10}  throughput {:>9.0} req/s",
                fgbs::bench::barometer::fmt_ns(hot),
                fgbs::bench::barometer::fmt_ns(p99),
                if wall > 0.0 { 1e9 / wall } else { 0.0 },
            );
        }
    }
    if let Some(path) = &cli.bench_out {
        std::fs::write(path, out.record.render())
            .map_err(|e| format!("cannot write record to {path}: {e}"))?;
        eprintln!("record -> {path}");
    }
    let failed = out.failed_gates();
    if !failed.is_empty() {
        let ids: Vec<&str> = failed.iter().map(|g| g.id.as_str()).collect();
        return Err(format!(
            "{} serve gate(s) failed: {}",
            failed.len(),
            ids.join(", ")
        ));
    }
    Ok(())
}

/// Write the collector's contents as a Chrome trace into `path`.
fn write_trace(path: &str) -> Result<(), String> {
    let trace = fgbs::trace::drain();
    let doc = fgbs::trace::chrome::to_chrome(&trace);
    std::fs::write(path, doc.render())
        .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
    eprintln!(
        "trace: {} span(s), {} counter(s) -> {path} (load in chrome://tracing \
         or run `fgbs trace summary {path}`)",
        trace.spans.len(),
        trace.counters.len()
    );
    Ok(())
}

/// Print store counters when a store was attached (`--store`).
fn report_store(cfg: &PipelineConfig) {
    if let Some(store) = &cfg.store {
        let c = store.counters();
        eprintln!(
            "store: {} hits, {} misses, {} writes ({})",
            c.hits,
            c.misses,
            c.puts,
            store.root().display()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Every CLI invocation is one logical request: spans, counters and
    // flight-recorder events it emits carry this id, exactly like an
    // HTTP request through the daemon.
    let _request_ctx = fgbs::trace::enter_request(fgbs::trace::next_request_id());
    // The flight recorder is armed for every invocation: recording is
    // bounded (per-thread rings) and cheap enough to leave on — the
    // `obs/flightrec_record` barometer entry gates it under 50 ns/event
    // — so a failure anywhere always has a recent-events window.
    fgbs::trace::flightrec::arm(true);
    // `--trace` turns the collector on for any command; `features`
    // always records so it can report per-generation GA progress.
    if cli.trace.is_some() || cli.command == Command::Features {
        fgbs::trace::set_enabled(true);
    }
    // Arm the failpoint registry before any pipeline or store work runs;
    // with no --fault-spec the probes stay a single relaxed atomic load.
    if let Some(spec) = &cli.fault_spec {
        match fgbs::fault::FaultPlan::parse(spec, cli.fault_seed) {
            Ok(plan) => {
                fgbs::fault::install(plan);
                eprintln!("faults armed: {spec} (seed {})", cli.fault_seed);
            }
            Err(e) => {
                eprintln!("bad --fault-spec: {e}");
                std::process::exit(2);
            }
        }
    }
    let outcome = match cli.command {
        Command::Info => {
            cmd_info();
            Ok(())
        }
        Command::Show => {
            cmd_show(&cli);
            Ok(())
        }
        Command::Help => {
            println!("{HELP}");
            Ok(())
        }
        Command::Reduce => cmd_reduce(&cli),
        Command::Predict => cmd_predict(&cli),
        Command::Select => cmd_select(&cli),
        Command::Features => cmd_features(&cli),
        Command::Serve => cmd_serve(&cli),
        Command::StoreLs => cmd_store_ls(&cli),
        Command::StoreGc => cmd_store_gc(&cli),
        Command::SnippetPack => cmd_snippet_pack(&cli),
        Command::SnippetUnpack => cmd_snippet_unpack(&cli),
        Command::SnippetLs => cmd_snippet_ls(&cli),
        Command::SnippetVerify => cmd_snippet_verify(&cli),
        Command::SnippetReplay => cmd_snippet_replay(&cli),
        Command::TraceSummary => cmd_trace_summary(&cli),
        Command::FlightrecDump => cmd_flightrec_dump(&cli),
        Command::FlightrecShow => cmd_flightrec_show(&cli),
        Command::Top => cmd_top(&cli),
        Command::BenchRun => cmd_bench_run(&cli),
        Command::BenchCmp => cmd_bench_cmp(&cli),
        Command::Loadgen => cmd_loadgen(&cli),
    };
    let outcome = outcome.and_then(|()| match &cli.trace {
        Some(path) => write_trace(path),
        None => Ok(()),
    });
    if fgbs::fault::armed() {
        eprintln!(
            "faults: {} injected, {} retried",
            fgbs::fault::injected(),
            fgbs::fault::retries()
        );
    }
    if let Err(e) = outcome {
        eprintln!("{e}");
        // Usage errors (bad --target and friends) exit 2, runtime
        // failures (store I/O, bind) exit 1.
        let code = if e.starts_with("predict requires") || e.starts_with("unknown target") {
            2
        } else {
            1
        };
        std::process::exit(code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_commands_and_options() {
        let c = parse(&argv("reduce --suite nr --class test --k 5")).unwrap();
        assert_eq!(c.command, Command::Reduce);
        assert_eq!(c.suite, SuiteKind::Nr);
        assert_eq!(c.class, Class::Test);
        assert_eq!(c.k, KChoice::Fixed(5));
        assert_eq!(c.threads, 0, "auto-detect unless --threads given");
        assert!(!c.paper_features);
        assert_eq!(c.results_dir, "results", "default results dir");
        assert!(!c.use_store);

        let c = parse(&argv("select --threads 8")).unwrap();
        assert_eq!(c.threads, 8);
        assert_eq!(build_config(&c).unwrap().threads, 8);
        let c = parse(&argv("select --threads 1")).unwrap();
        assert_eq!(build_config(&c).unwrap().pool().threads(), 1);

        let c = parse(&argv("predict --target atom --paper-features")).unwrap();
        assert_eq!(c.command, Command::Predict);
        assert_eq!(c.target.as_deref(), Some("atom"));
        assert!(c.paper_features);

        let c = parse(&argv("select --k elbow")).unwrap();
        assert_eq!(c.command, Command::Select);
        assert_eq!(c.k, KChoice::Elbow { max_k: 24 });
    }

    #[test]
    fn parses_new_subcommands() {
        let c = parse(&argv("serve --addr 0.0.0.0:9000 --threads 4")).unwrap();
        assert_eq!(c.command, Command::Serve);
        assert_eq!(c.addr, "0.0.0.0:9000");
        assert_eq!(c.threads, 4);

        let c = parse(&argv("store ls --results-dir /tmp/x")).unwrap();
        assert_eq!(c.command, Command::StoreLs);
        assert_eq!(c.results_dir, "/tmp/x");

        let c = parse(&argv("store gc --keep 2")).unwrap();
        assert_eq!(c.command, Command::StoreGc);
        assert_eq!(c.keep, 2);

        let c = parse(&argv("features --generations 3 --population 10 --seed 1")).unwrap();
        assert_eq!(c.command, Command::Features);
        assert_eq!((c.generations, c.population, c.seed), (3, 10, 1));

        let c = parse(&argv("reduce --store")).unwrap();
        assert!(c.use_store);

        let c = parse(&argv("reduce --trace out.json")).unwrap();
        assert_eq!(c.trace.as_deref(), Some("out.json"));

        let c = parse(&argv("reduce --fault-spec store.read=err:0.5#2 --fault-seed 42")).unwrap();
        assert_eq!(c.fault_spec.as_deref(), Some("store.read=err:0.5#2"));
        assert_eq!(c.fault_seed, 42);
        let c = parse(&argv("reduce")).unwrap();
        assert_eq!(c.fault_spec, None);
        assert_eq!(c.fault_seed, 0, "deterministic default seed");

        let c = parse(&argv("trace summary results/run.json")).unwrap();
        assert_eq!(c.command, Command::TraceSummary);
        assert_eq!(c.trace_file, "results/run.json");

        let c = parse(&argv("help")).unwrap();
        assert_eq!(c.command, Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap().command, Command::Help);
    }

    #[test]
    fn parses_bench_commands() {
        let c = parse(&argv("bench")).unwrap();
        assert_eq!(c.command, Command::BenchRun);
        assert!(!c.quick && c.bench_filter.is_none() && c.bench_out.is_none());

        let c = parse(&argv("bench --quick --filter clustering --out rec.json --threads 2"))
            .unwrap();
        assert_eq!(c.command, Command::BenchRun);
        assert!(c.quick);
        assert_eq!(c.bench_filter.as_deref(), Some("clustering"));
        assert_eq!(c.bench_out.as_deref(), Some("rec.json"));
        assert_eq!(c.threads, 2);

        let c = parse(&argv("bench --registry custom.json")).unwrap();
        assert_eq!(c.bench_registry.as_deref(), Some("custom.json"));

        let c = parse(&argv("bench cmp old.json new.json")).unwrap();
        assert_eq!(c.command, Command::BenchCmp);
        assert_eq!(c.cmp_old, "old.json");
        assert_eq!(c.cmp_new, "new.json");
        assert_eq!(c.min_change, 10.0);
        assert_eq!(c.noise_mult, 4.0);
        assert!(!c.strict);

        let c = parse(&argv("bench cmp a.json b.json --min-change 25 --noise-mult 2 --strict"))
            .unwrap();
        assert_eq!(c.min_change, 25.0);
        assert_eq!(c.noise_mult, 2.0);
        assert!(c.strict);

        // An option right after `bench` must not be eaten as a subcommand.
        let c = parse(&argv("bench --quick")).unwrap();
        assert_eq!(c.command, Command::BenchRun);
        assert!(c.quick);

        assert!(parse(&argv("bench cmp old.json")).is_err());
        assert!(parse(&argv("bench cmp")).is_err());
        assert!(parse(&argv("bench --filter")).is_err());
        assert!(parse(&argv("bench --out")).is_err());
        assert!(parse(&argv("bench --registry")).is_err());
        assert!(parse(&argv("bench cmp a b --min-change lots")).is_err());
    }

    #[test]
    fn parses_snippet_subcommands() {
        let c = parse(&argv("snippet pack --suite bigdata --class test --out p.fgsn")).unwrap();
        assert_eq!(c.command, Command::SnippetPack);
        assert_eq!(c.suite, SuiteKind::Bigdata);
        assert_eq!(c.class, Class::Test);
        assert_eq!(c.bench_out.as_deref(), Some("p.fgsn"));

        let c = parse(&argv("snippet unpack p.fgsn")).unwrap();
        assert_eq!(c.command, Command::SnippetUnpack);
        assert_eq!(c.snippet_file, "p.fgsn");

        let c = parse(&argv("snippet ls --results-dir /tmp/x")).unwrap();
        assert_eq!(c.command, Command::SnippetLs);
        assert_eq!(c.results_dir, "/tmp/x");

        let c = parse(&argv("snippet verify p.fgsn")).unwrap();
        assert_eq!(c.command, Command::SnippetVerify);

        let c = parse(&argv("snippet replay p.fgsn --threads 8")).unwrap();
        assert_eq!(c.command, Command::SnippetReplay);
        assert_eq!(c.threads, 8);

        assert!(parse(&argv("snippet")).is_err(), "snippet needs a subcommand");
        assert!(parse(&argv("snippet smash")).is_err());
        assert!(parse(&argv("snippet verify")).is_err(), "verify needs a file");
        assert!(
            parse(&argv("snippet replay --threads 2")).is_err(),
            "a flag is not a pack file"
        );
    }

    #[test]
    fn help_text_enumerates_every_subcommand() {
        for cmd in [
            "info", "show", "reduce", "predict", "select", "features", "serve", "store ls",
            "store gc", "snippet pack", "snippet unpack", "snippet ls", "snippet verify",
            "snippet replay", "trace summary", "flightrec dump", "flightrec show", "top",
            "bench", "bench cmp", "loadgen", "help",
        ] {
            assert!(HELP.contains(cmd), "help must describe `{cmd}`");
        }
    }

    #[test]
    fn parses_observability_subcommands() {
        let c = parse(&argv("flightrec dump")).unwrap();
        assert_eq!(c.command, Command::FlightrecDump);
        assert_eq!(c.request, None, "newest dump by default");

        let c = parse(&argv("flightrec show --request 42 --results-dir /tmp/x")).unwrap();
        assert_eq!(c.command, Command::FlightrecShow);
        assert_eq!(c.request, Some(42));
        assert_eq!(c.results_dir, "/tmp/x");

        let c = parse(&argv("top")).unwrap();
        assert_eq!(c.command, Command::Top);
        assert_eq!(c.interval_ms, 1000);
        assert_eq!(c.count, 0, "poll forever by default");

        let c = parse(&argv("top --addr 127.0.0.1:9000 --interval 250 --count 3")).unwrap();
        assert_eq!(c.addr, "127.0.0.1:9000");
        assert_eq!(c.interval_ms, 250);
        assert_eq!(c.count, 3);

        let c = parse(&argv("loadgen --quick --out serve.json --threads 4")).unwrap();
        assert_eq!(c.command, Command::Loadgen);
        assert!(c.quick);
        assert_eq!(c.bench_out.as_deref(), Some("serve.json"));
        assert_eq!(c.threads, 4);

        assert!(parse(&argv("flightrec")).is_err(), "flightrec needs a subcommand");
        assert!(parse(&argv("flightrec replay")).is_err());
        assert!(parse(&argv("flightrec show --request soon")).is_err());
        assert!(parse(&argv("top --interval fast")).is_err());
    }

    #[test]
    fn trailing_arguments_are_rejected_not_swallowed() {
        let err = parse(&argv("info extra")).unwrap_err();
        assert!(err.contains("unexpected trailing argument `extra`"), "{err}");
        let err = parse(&argv("reduce --suite nr leftovers")).unwrap_err();
        assert!(err.contains("unexpected trailing argument `leftovers`"), "{err}");
        // Mistyped flags still read as unknown options.
        let err = parse(&argv("reduce --bogus")).unwrap_err();
        assert!(err.contains("unknown option `--bogus`"), "{err}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("reduce --k banana")).is_err());
        assert!(parse(&argv("reduce --suite spec")).is_err());
        assert!(parse(&argv("reduce --bogus")).is_err());
        assert!(parse(&argv("select --threads")).is_err());
        assert!(parse(&argv("select --threads many")).is_err());
        assert!(parse(&argv("store")).is_err(), "store needs a subcommand");
        assert!(parse(&argv("store drop")).is_err());
        assert!(parse(&argv("serve --addr")).is_err());
        assert!(parse(&argv("store gc --keep some")).is_err());
        assert!(parse(&argv("features --seed x")).is_err());
        assert!(parse(&argv("reduce --results-dir")).is_err());
        assert!(parse(&argv("reduce --trace")).is_err());
        assert!(parse(&argv("trace")).is_err(), "trace needs a subcommand");
        assert!(parse(&argv("trace summary")).is_err(), "summary needs a file");
        assert!(parse(&argv("trace dump x.json")).is_err());
        assert!(parse(&argv("reduce --fault-spec")).is_err());
        assert!(parse(&argv("reduce --fault-seed nope")).is_err());
    }

    #[test]
    fn resolves_targets() {
        assert_eq!(target_by_name("atom").unwrap().name, "Atom");
        assert_eq!(target_by_name("SB").unwrap().name, "Sandy Bridge");
        assert_eq!(target_by_name("core2").unwrap().name, "Core 2");
        assert!(target_by_name("vax").is_err());
        // Targets come back scaled.
        let full = Arch::atom().caches[1].size;
        assert_eq!(target_by_name("atom").unwrap().caches[1].size, full / PARK_SCALE);
    }
}
